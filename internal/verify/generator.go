// Package verify is the property-based correctness backstop for the
// Tableau reproduction. It manufactures randomized scheduling scenarios
// (populations, workloads, fault plans, mid-run replans) that are
// bit-for-bit reproducible from a seed, runs them on the simulated
// machine, and replays the finished run through invariant oracles that
// check the paper's analytical claims hold on *arbitrary* workloads,
// not just the evaluation's figures:
//
//   - utilization: every admitted vCPU receives at least its reserved
//     service in every complete guarantee window (paper Sec. 3's
//     "utilization guarantee");
//   - max-gap: no scheduling gap exceeds the planner's blackout bound
//     2*(1-U)*T = the latency goal (paper Sec. 5.1);
//   - conservation: no vCPU is lost or double-run across table switches
//     and degraded-mode adoption, and pCPU time is exactly partitioned
//     into guest/overhead/idle;
//   - trace-consistency: metrics derived from an encoded+decoded
//     TBTRACE1 dump equal the live tracer's metrics and the machine's
//     ground-truth accounting.
//
// A differential/metamorphic layer (diff.go, metamorphic.go) runs the
// same generated population under tableau/credit/credit2/rtds and
// checks cross-scheduler sanity, and checks that planning is invariant
// under spec permutation and latency-goal scaling. mutants.go provides
// intentionally broken scheduler variants proving the oracles actually
// catch bugs (the mutation-smoke CI target).
package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"tableau/internal/faults"
	"tableau/internal/planner"
)

// Horizon is the simulated duration of every generated run. The
// utilization and max-gap oracles need several complete guarantee
// windows inside the pre-fault "quiet" prefix; the generator's
// (util, latency-goal) menu bounds every chosen period at 25 ms
// (see latencyMenu), so 120 ms covers at least four windows even when
// faults land at the earliest allowed instant.
const Horizon = 120_000_000

// Fault and replan placement inside the horizon: disturbances start no
// earlier than faultEarliest (leaving a quiet prefix for the exact
// oracles) and end early enough that recovery is observable.
const (
	faultEarliest = 40_000_000
	faultLatest   = 80_000_000
	replanAt      = 60_000_000
)

// WorkloadKind selects a generated vCPU's guest program.
type WorkloadKind uint8

const (
	// Hog never blocks: it consumes every cycle offered. Hogs are the
	// subjects of the utilization and max-gap oracles — a vCPU that
	// fails to receive its reservation cannot blame its own blocking.
	Hog WorkloadKind = iota
	// Blocky alternates compute bursts and I/O waits (StressIO),
	// exercising wakeup paths, the second-level scheduler, and IPIs.
	Blocky
)

func (k WorkloadKind) String() string {
	if k == Hog {
		return "hog"
	}
	return "blocky"
}

// VMSpec is one generated single-vCPU VM.
type VMSpec struct {
	Name        string
	Util        planner.Util
	LatencyGoal int64
	Capped      bool
	Workload    WorkloadKind
	// ComputeNs/BlockNs parameterize Blocky workloads.
	ComputeNs, BlockNs int64
	// Class is the tenancy class. BE VMs soak second-level slack behind
	// LS ones and are the shed victims when an LS arrival overloads the
	// host; the class-continuity oracle holds the controller to exactly
	// that order.
	Class planner.Class
}

// ReplanSpec is an optional mid-run reconfiguration: at time At the
// control plane changes slot Slot's latency goal to NewGoal and pushes
// a regenerated table to the live dispatcher (the paper's
// reconfiguration path, exercising boundary-synchronized adoption).
type ReplanSpec struct {
	Slot    int
	NewGoal int64
	At      int64
}

// ChurnOp is one arrival (Activate) or departure (!Activate) of slot
// Slot at time At, submitted through the transactional Controller
// pipeline. Ops sharing an At form one burst: they are submitted
// together and flushed as a single coalesced batch, so a storm becomes
// one planner invocation and one epoch transition. Slot indexes the
// combined population: resident VMs first (0..len(VMs)-1), then spares
// (len(VMs)..). An activation the host cannot admit is *meant* to be
// rejected — that exercises the rollback path the continuity oracle
// guards.
type ChurnOp struct {
	At       int64
	Slot     int
	Activate bool
}

// Scenario is one fully materialized generated run. Every field is a
// pure function of (seed, Config): Generate is deterministic, so a
// seed identifies a scenario forever.
type Scenario struct {
	Seed   int64
	Cores  int
	VMs    []VMSpec
	Faults *faults.Plan // nil when the scenario is fault-free
	Replan *ReplanSpec  // nil when there is no mid-run replan

	// Spares are VMs registered with the control plane but inactive at
	// t=0; churn ops activate them mid-run. Some are deliberately
	// oversized so arrival storms hit admission rejections. Non-empty
	// only for churn scenarios.
	Spares []VMSpec
	// Churn is the arrival/departure storm, in canonical (At, Slot)
	// order. Non-empty churn routes the run through a core.Controller.
	Churn []ChurnOp
}

// NumSlots returns the combined population size (residents + spares).
func (s *Scenario) NumSlots() int { return len(s.VMs) + len(s.Spares) }

// VM returns the spec of combined slot id (resident or spare).
func (s *Scenario) VM(slot int) *VMSpec {
	if slot < len(s.VMs) {
		return &s.VMs[slot]
	}
	return &s.Spares[slot-len(s.VMs)]
}

// churnedSlots returns the set of slots any churn op touches.
func (s *Scenario) churnedSlots() map[int]bool {
	if len(s.Churn) == 0 {
		return nil
	}
	out := make(map[int]bool, len(s.Churn))
	for _, op := range s.Churn {
		out[op.Slot] = true
	}
	return out
}

// TotalUtil returns the population's exact reserved utilization in PPM.
func (s *Scenario) TotalUtil() int64 {
	var ppm int64
	for _, vm := range s.VMs {
		ppm += vm.Util.PPM()
	}
	return ppm
}

// HasFaultKind reports whether the scenario injects a fault of kind k.
func (s *Scenario) HasFaultKind(k string) bool {
	if s.Faults == nil {
		return false
	}
	for _, e := range s.Faults.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// QuietEnd returns the end of the undisturbed prefix: the earliest
// fault or replan instant, or the horizon for undisturbed runs. The
// exact utilization and max-gap oracles restrict themselves to
// complete windows inside it.
func (s *Scenario) QuietEnd() int64 {
	quiet := int64(Horizon)
	if s.Faults != nil {
		for _, e := range s.Faults.Events {
			if e.At < quiet {
				quiet = e.At
			}
		}
	}
	if s.Replan != nil && s.Replan.At < quiet {
		quiet = s.Replan.At
	}
	for _, op := range s.Churn {
		if op.At < quiet {
			quiet = op.At
		}
	}
	return quiet
}

// String renders a compact fingerprint of the scenario, used in soak
// reports and shrinking output.
func (s *Scenario) String() string {
	nf := 0
	if s.Faults != nil {
		nf = len(s.Faults.Events)
	}
	nr := 0
	if s.Replan != nil {
		nr = 1
	}
	return fmt.Sprintf("seed=%d cores=%d vms=%d util=%dppm faults=%d replans=%d spares=%d churn=%d",
		s.Seed, s.Cores, len(s.VMs), s.TotalUtil(), nf, nr, len(s.Spares), len(s.Churn))
}

// Config bounds the generator's distributions. The zero value selects
// the defaults below.
type Config struct {
	// MinCores/MaxCores bound the machine size (defaults 1 and 4).
	MinCores, MaxCores int
	// MaxVMs bounds the population (default 12; the generator also
	// stops when the utilization budget is exhausted).
	MaxVMs int
	// FaultPct is the percentage of scenarios carrying a fault plan
	// (default 30).
	FaultPct int
	// ReplanPct is the percentage of scenarios carrying a mid-run
	// reconfiguration (default 25; mutually exclusive with faults).
	ReplanPct int
	// BlockyPct is the per-VM percentage of Blocky workloads
	// (default 30).
	BlockyPct int
	// ChurnPct is the percentage of scenarios carrying an
	// arrival/departure storm driven through the Controller pipeline
	// (default 25). Churn is drawn independently of faults, so a storm
	// can race a fail-stop. Negative disables churn.
	ChurnPct int
	// UtilBudgetPPM caps the population's total reserved utilization
	// per core, in PPM (default 850_000 — admission with headroom, so
	// generated scenarios never trip ErrOverUtilized by construction).
	UtilBudgetPPM int64
	// BEPct is the per-VM percentage of best-effort (BE) tenancy
	// (default 25), applied to residents and spares alike. Negative
	// keeps every VM latency-sensitive, reproducing pre-class
	// populations exactly.
	BEPct int
}

func (c Config) withDefaults() Config {
	if c.MinCores == 0 {
		c.MinCores = 1
	}
	if c.MaxCores == 0 {
		c.MaxCores = 4
	}
	if c.MaxVMs < 2 {
		c.MaxVMs = 12
	}
	if c.FaultPct == 0 {
		c.FaultPct = 30
	}
	if c.ReplanPct == 0 {
		c.ReplanPct = 25
	}
	if c.BlockyPct == 0 {
		c.BlockyPct = 30
	}
	if c.ChurnPct == 0 {
		c.ChurnPct = 25
	}
	if c.UtilBudgetPPM == 0 {
		c.UtilBudgetPPM = 850_000
	}
	if c.BEPct == 0 {
		c.BEPct = 25
	}
	return c
}

// utilMenu is the generator's utilization alphabet. Every denominator
// divides a candidate period (MaxHyperperiod is 2^3·3^3·5^2·7·11·13·19),
// so the planner can always pick an exact-divisor period and the
// metamorphic normalized-allocation invariant (Service = U·Window
// exactly) is well-defined.
var utilMenu = []planner.Util{
	{Num: 1, Den: 10},
	{Num: 1, Den: 8},
	{Num: 1, Den: 6},
	{Num: 1, Den: 5},
	{Num: 1, Den: 4},
	{Num: 1, Den: 3},
	{Num: 1, Den: 2},
	{Num: 2, Den: 3},
	{Num: 3, Den: 4},
}

// goalMenu is the latency-goal alphabet in ns.
var goalMenu = []int64{2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000}

// latencyMenu returns the goals compatible with utilization u: the
// blackout bound 2*(1-U)*T <= L must be satisfiable by a period
// T <= 25 ms, so that guarantee windows stay small relative to the
// horizon. That requires L <= 50ms * (1-U).
func latencyMenu(u planner.Util) []int64 {
	limit := 50_000_000 * (u.Den - u.Num) / u.Den
	out := make([]int64, 0, len(goalMenu))
	for _, g := range goalMenu {
		if g <= limit {
			out = append(out, g)
		}
	}
	return out
}

// Generate materializes the scenario identified by (seed, cfg). It is
// deterministic: the same inputs always yield a deeply equal Scenario
// (pinned by TestGenerateReproducible), which is what makes a soak
// report a list of replayable repro commands.
func Generate(seed int64, cfg Config) *Scenario {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed}
	sc.Cores = cfg.MinCores + rng.Intn(cfg.MaxCores-cfg.MinCores+1)

	wantFault := rng.Intn(100) < cfg.FaultPct
	wantReplan := !wantFault && rng.Intn(100) < cfg.ReplanPct
	wantFailStop := wantFault && sc.Cores >= 2 && rng.Intn(100) < 40

	// A fail-stop scenario must stay admissible on the survivors so the
	// emergency replan can succeed; budget the population accordingly.
	budgetCores := int64(sc.Cores)
	if wantFailStop {
		budgetCores = int64(sc.Cores - 1)
	}
	budget := cfg.UtilBudgetPPM * budgetCores

	maxVMs := 2 + rng.Intn(cfg.MaxVMs-1)
	var usedPPM int64
	for i := 0; i < maxVMs; i++ {
		u := utilMenu[rng.Intn(len(utilMenu))]
		if usedPPM+u.PPM() > budget {
			// Try the smallest menu entry before giving up, so dense
			// populations still get filled in.
			u = utilMenu[0]
			if usedPPM+u.PPM() > budget {
				break
			}
		}
		usedPPM += u.PPM()
		goals := latencyMenu(u)
		vm := VMSpec{
			Name:        fmt.Sprintf("vm%d.0", i),
			Util:        u,
			LatencyGoal: goals[rng.Intn(len(goals))],
			Capped:      rng.Intn(2) == 0,
		}
		if rng.Intn(100) < cfg.BlockyPct {
			vm.Workload = Blocky
			vm.ComputeNs = 200_000 + rng.Int63n(600_000)
			vm.BlockNs = 200_000 + rng.Int63n(800_000)
		}
		sc.VMs = append(sc.VMs, vm)
	}
	if len(sc.VMs) == 0 {
		sc.VMs = append(sc.VMs, VMSpec{
			Name: "vm0.0", Util: utilMenu[0], LatencyGoal: goalMenu[2], Capped: true,
		})
	}

	if wantFault {
		sc.Faults = genFaults(rng, sc.Cores, wantFailStop)
	}
	if wantReplan {
		slot := rng.Intn(len(sc.VMs))
		goals := latencyMenu(sc.VMs[slot].Util)
		sc.Replan = &ReplanSpec{
			Slot:    slot,
			NewGoal: goals[rng.Intn(len(goals))],
			At:      replanAt,
		}
	}
	// Churn is drawn last so churn-free scenarios are identical to what
	// pre-churn versions of the generator produced for the same seed.
	if cfg.ChurnPct > 0 && rng.Intn(100) < cfg.ChurnPct {
		genChurn(rng, sc)
	}
	// Tenancy classes are drawn after every structural draw, so each
	// seed's population shape, faults, and churn are identical to what
	// pre-class generators produced — classes only relabel it.
	if cfg.BEPct > 0 {
		for i := range sc.VMs {
			if rng.Intn(100) < cfg.BEPct {
				sc.VMs[i].Class = planner.BE
			}
		}
		for i := range sc.Spares {
			if rng.Intn(100) < cfg.BEPct {
				sc.Spares[i].Class = planner.BE
			}
		}
	}
	return sc
}

// genChurn grows the scenario with a spare population and an
// arrival/departure storm. Spares are always Hogs — they are the
// subjects of the continuity oracle, and a blocking spare would forfeit
// service legitimately. Roughly a quarter of spares are deliberately
// oversized so that dense hosts reject them, exercising the
// individual-rejection and rollback paths under load.
func genChurn(rng *rand.Rand, sc *Scenario) {
	nSpares := 1 + rng.Intn(3)
	for i := 0; i < nSpares; i++ {
		u := utilMenu[rng.Intn(5)] // 1/10 .. 1/4
		if rng.Intn(100) < 25 {
			u = utilMenu[6+rng.Intn(3)] // 1/2, 2/3 or 3/4: likely inadmissible
		}
		goals := latencyMenu(u)
		sc.Spares = append(sc.Spares, VMSpec{
			Name:        fmt.Sprintf("spare%d.0", i),
			Util:        u,
			LatencyGoal: goals[rng.Intn(len(goals))],
			Capped:      rng.Intn(2) == 0,
			Workload:    Hog,
		})
	}

	// Desired activity state, used only to pick plausible op targets;
	// the run's actual state depends on which activations are admitted.
	active := make([]bool, sc.NumSlots())
	for i := range sc.VMs {
		active[i] = true
	}

	span := int64(faultLatest - faultEarliest)
	nBursts := 2 + rng.Intn(3)
	for b := 0; b < nBursts; b++ {
		at := faultEarliest + rng.Int63n(span)
		nOps := 1 + rng.Intn(4)
		for o := 0; o < nOps; o++ {
			var candidates []int
			wantArrival := rng.Intn(100) < 60
			for slot := range active {
				if wantArrival != active[slot] && (wantArrival || slot != 0) {
					candidates = append(candidates, slot)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			slot := candidates[rng.Intn(len(candidates))]
			active[slot] = wantArrival
			sc.Churn = append(sc.Churn, ChurnOp{At: at, Slot: slot, Activate: wantArrival})
		}
	}
	sort.SliceStable(sc.Churn, func(i, j int) bool {
		return sc.Churn[i].At < sc.Churn[j].At
	})
}

// genFaults draws a small deterministic fault plan. At most one
// fail-stop is injected (and never two on the same core), keeping the
// trace-consistency oracle's fault-count bookkeeping exact.
func genFaults(rng *rand.Rand, cores int, failStop bool) *faults.Plan {
	span := int64(faultLatest - faultEarliest)
	at := func() int64 { return faultEarliest + rng.Int63n(span) }
	var events []faults.Event
	if failStop {
		events = append(events, faults.Event{
			Kind: faults.KindPCPUFailStop,
			At:   at(),
			Core: rng.Intn(cores),
		})
	} else {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				events = append(events, faults.Event{
					Kind:     faults.KindPCPUStall,
					At:       at(),
					Duration: 100_000 + rng.Int63n(1_900_000),
					Core:     rng.Intn(cores),
				})
			case 1:
				events = append(events, faults.Event{
					Kind:     faults.KindTimerDrift,
					At:       at(),
					Duration: 2_000_000 + rng.Int63n(8_000_000),
					Core:     rng.Intn(cores),
					Delay:    1_000 + rng.Int63n(49_000),
				})
			case 2:
				events = append(events, faults.Event{
					Kind:     faults.KindIPIDrop,
					At:       at(),
					Duration: 2_000_000 + rng.Int63n(8_000_000),
					Core:     -1,
				})
			case 3:
				events = append(events, faults.Event{
					Kind:     faults.KindIPIDelay,
					At:       at(),
					Duration: 2_000_000 + rng.Int63n(8_000_000),
					Core:     -1,
					Delay:    10_000 + rng.Int63n(190_000),
				})
			}
		}
	}
	p := &faults.Plan{Seed: rng.Int63(), Events: events}
	sorted := p.Sorted()
	p.Events = sorted
	return p
}
