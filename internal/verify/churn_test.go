package verify

import (
	"testing"

	"tableau/internal/planner"
)

// TestGenerateChurnShape checks the structural contract of generated
// churn scenarios: ops stay inside the disturbance window, never touch
// slot 0, target only registered slots, and every churn scenario
// carries at least one spare.
func TestGenerateChurnShape(t *testing.T) {
	cfg := Config{ChurnPct: 100}
	churny := 0
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed, cfg)
		if len(sc.Churn) == 0 {
			continue
		}
		churny++
		if len(sc.Spares) == 0 {
			t.Errorf("seed %d: churn without spares", seed)
		}
		for _, op := range sc.Churn {
			if op.At < faultEarliest || op.At >= faultLatest {
				t.Errorf("seed %d: churn op at %d outside [%d,%d)", seed, op.At, faultEarliest, faultLatest)
			}
			if op.Slot == 0 && !op.Activate {
				t.Errorf("seed %d: churn departs slot 0", seed)
			}
			if op.Slot < 0 || op.Slot >= sc.NumSlots() {
				t.Errorf("seed %d: churn targets unknown slot %d of %d", seed, op.Slot, sc.NumSlots())
			}
		}
		for _, sp := range sc.Spares {
			if sp.Workload != Hog {
				t.Errorf("seed %d: spare %s is not a hog", seed, sp.Name)
			}
		}
	}
	if churny < 150 {
		t.Fatalf("only %d/200 seeds produced churn at ChurnPct=100", churny)
	}
}

// TestChurnContinuity soaks the continuity oracle over seeded churn
// storms: every scenario runs through the transactional Controller and
// must come back violation-free — admitted VMs keep their guarantees
// across epochs, and no gap exceeds the summed analytical blackout
// bound. 200 scenarios in full mode (the acceptance floor), 50 under
// -short.
func TestChurnContinuity(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 50
	}
	cfg := Config{ChurnPct: 100}
	ran, withCtrl := 0, 0
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed, cfg)
		art, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc, err)
		}
		ran++
		if art.Controller != nil {
			withCtrl++
			if len(art.Controller.History()) == 0 {
				t.Errorf("seed %d: controller with empty epoch history", seed)
			}
		}
		for _, v := range CheckAll(art) {
			t.Errorf("seed %d (%s): %s", seed, sc, v)
		}
	}
	if withCtrl < ran/2 {
		t.Fatalf("only %d/%d scenarios exercised the controller path", withCtrl, ran)
	}
}

// TestMutationSmokeShedLSFirst proves the class-aware continuity
// oracle earns its keep: a controller defect that inverts the shed
// order — taking a latency-sensitive guarantee while a best-effort
// guest still holds the slack — must be caught as a shed-order
// violation, while the correct controller sheds the BE guest and stays
// clean. The inverted shed is committed and journaled, so retention
// alone cannot object; only the class check convicts it.
//
// The host is one core: vm0 is LS at 1/2, vm1 is BE at 1/4, and the
// arriving LS spare wants another 1/2 (total 1.25 cores). The LS
// subpopulation alone fits exactly (1/2 + 1/2), so admission is
// entitled to displace BE slack: the correct controller sheds vm1 and
// admits the spare; the defective one sheds vm0 while vm1 remains.
func TestMutationSmokeShedLSFirst(t *testing.T) {
	sc := &Scenario{
		Seed:  7,
		Cores: 1,
		VMs: []VMSpec{
			{Name: "vm0.0", Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true},
			{Name: "vm1.0", Util: planner.Util{Num: 1, Den: 4}, LatencyGoal: 20_000_000, Capped: true, Class: planner.BE},
		},
		Spares: []VMSpec{
			{Name: "spare0.0", Util: planner.Util{Num: 1, Den: 2}, LatencyGoal: 20_000_000, Capped: true},
		},
		Churn: []ChurnOp{{At: 50_000_000, Slot: 2, Activate: true}},
	}

	clean, err := run(sc, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckAll(clean); len(vs) != 0 {
		t.Fatalf("correct controller flagged: %v", vs)
	}
	if len(clean.Transitions) != 1 {
		t.Fatalf("expected one transition, got %+v", clean.Transitions)
	}
	tr := clean.Transitions[0].Tr
	if len(tr.Rejected) != 0 {
		t.Fatalf("correct controller should admit the LS arrival by shedding BE, rejected %+v", tr.Rejected)
	}
	shed := 0
	for _, op := range tr.Committed {
		if op.Shed {
			shed++
			if op.Slot != 1 {
				t.Errorf("correct controller shed slot %d, want the BE slot 1", op.Slot)
			}
		}
	}
	if shed != 1 {
		t.Fatalf("correct controller committed %d sheds, want 1 (%+v)", shed, tr.Committed)
	}

	evil, err := run(sc, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// The defect must have actually fired: the arrival was admitted by
	// shedding the LS guest, producing a second epoch.
	if len(evil.Controller.History()) < 2 {
		t.Fatalf("shed defect did not install a new epoch (history %d)", len(evil.Controller.History()))
	}
	found := false
	for _, v := range CheckAll(evil) {
		if v.Class == ClassContinuity {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("continuity oracle missed the inverted shed order")
	}
}

// TestTenancyContinuity soaks the class-aware oracles over seeded
// mixed-class churn storms: across every storm, LS guarantees that
// admission accepted survive, every BE absence is explained by a
// committed deactivation, and no shed ever takes an LS slot while a BE
// guest remains. The class draw rides after every structural draw, so
// these are the same storms TestChurnContinuity replays, relabeled.
// 200 scenarios in full mode (the acceptance floor), 50 under -short.
func TestTenancyContinuity(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 50
	}
	cfg := Config{ChurnPct: 100, BEPct: 50}
	mixed, sheds := 0, 0
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed, cfg)
		ls, be := 0, 0
		for slot := 0; slot < sc.NumSlots(); slot++ {
			if sc.VM(slot).Class == planner.BE {
				be++
			} else {
				ls++
			}
		}
		if ls > 0 && be > 0 {
			mixed++
		}
		art, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, sc, err)
		}
		for _, ct := range art.Transitions {
			for _, op := range ct.Tr.Committed {
				if op.Shed {
					sheds++
				}
			}
		}
		for _, v := range CheckAll(art) {
			t.Errorf("seed %d (%s): %s", seed, sc, v)
		}
	}
	if mixed < int(n)/2 {
		t.Fatalf("only %d/%d scenarios drew a mixed-class population at BEPct=50", mixed, n)
	}
	if sheds == 0 {
		t.Fatal("no storm exercised the shed path — the soak lost its teeth")
	}
}

// TestChurnTransitionsRecorded spot-checks the run wiring: a churn
// scenario's flushes land in Artifacts.Transitions in time order, and
// committed transitions correspond to monotonically increasing epochs.
func TestChurnTransitionsRecorded(t *testing.T) {
	cfg := Config{ChurnPct: 100}
	checked := 0
	for seed := int64(1); seed <= 40 && checked < 10; seed++ {
		sc := Generate(seed, cfg)
		if len(sc.Churn) == 0 {
			continue
		}
		art, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checked++
		if art.Controller == nil {
			t.Fatalf("seed %d: churn scenario ran without a controller", seed)
		}
		var lastAt int64
		var lastVer uint64
		for _, ct := range art.Transitions {
			if ct.At < lastAt {
				t.Errorf("seed %d: transitions out of time order", seed)
			}
			lastAt = ct.At
			if ct.Tr.Version != 0 {
				if ct.Tr.Version <= lastVer {
					t.Errorf("seed %d: committed epoch versions not increasing: %d after %d",
						seed, ct.Tr.Version, lastVer)
				}
				lastVer = ct.Tr.Version
			}
		}
	}
	if checked == 0 {
		t.Fatal("no churn scenarios found in the first 40 seeds")
	}
}
