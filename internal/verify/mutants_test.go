package verify

import (
	"testing"

	"tableau/internal/trace"
	"tableau/internal/vmm"
)

// mutantCfg generates pure populations: no faults, no replans, no
// blocking workloads — every deviation the oracles report is the
// mutant's doing.
var mutantCfg = Config{FaultPct: -1, ReplanPct: -1, BlockyPct: -1, ChurnPct: -1}

// mutantSeed selects a deterministic scenario with at least two VMs so
// starving one cannot be confused with an empty machine.
func mutantScenario(t *testing.T) *Scenario {
	t.Helper()
	for seed := int64(1); seed < 100; seed++ {
		sc := Generate(seed, mutantCfg)
		if len(sc.VMs) >= 2 && sc.Cores >= 2 {
			return sc
		}
	}
	t.Fatal("no suitable mutant scenario in seed range")
	return nil
}

func classes(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Class]++
	}
	return out
}

// TestMutationSmokeBaseline pins that the mutant scenario is clean
// when unmutated — otherwise the smoke tests below prove nothing.
func TestMutationSmokeBaseline(t *testing.T) {
	sc := mutantScenario(t)
	art, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckAll(art); len(vs) > 0 {
		t.Fatalf("baseline scenario %s not clean: %v", sc, vs)
	}
}

// TestMutationSmokeStarve proves the utilization oracle catches a
// scheduler that silently drops one vCPU's reservations.
func TestMutationSmokeStarve(t *testing.T) {
	sc := mutantScenario(t)
	art, err := run(sc, func(inner vmm.Scheduler) vmm.Scheduler {
		return newStarveMutant(inner, 0)
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := classes(CheckAll(art))
	if got[ClassUtilization] == 0 {
		t.Fatalf("starve mutant not flagged by the utilization oracle; classes: %v", got)
	}
}

// TestMutationSmokeDelay proves the max-gap oracle catches a scheduler
// that delivers full service but with gaps beyond the blackout bound.
func TestMutationSmokeDelay(t *testing.T) {
	sc := mutantScenario(t)
	delay := 2 * sc.VMs[0].LatencyGoal
	art, err := run(sc, func(inner vmm.Scheduler) vmm.Scheduler {
		return newDelayMutant(inner, 0, delay)
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := classes(CheckAll(art))
	if got[ClassMaxGap] == 0 {
		t.Fatalf("delay mutant not flagged by the max-gap oracle; classes: %v", got)
	}
}

// TestMutationSmokePhantom proves the conservation oracle rejects a
// record stream with fabricated dispatches (double-runs), and that the
// trace-consistency oracle sees trace-derived runtime drift from the
// machine's ground truth.
func TestMutationSmokePhantom(t *testing.T) {
	sc := mutantScenario(t)
	art, err := run(sc, func(inner vmm.Scheduler) vmm.Scheduler {
		return newPhantomMutant(inner, 0, 5)
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	got := classes(CheckAll(art))
	if got[ClassConservation] == 0 {
		t.Fatalf("phantom mutant not flagged by the conservation oracle; classes: %v", got)
	}
	if got[ClassTraceConsistency] == 0 {
		t.Fatalf("phantom mutant not flagged by the trace-consistency oracle; classes: %v", got)
	}
}

// TestMutationSmokeTamper proves the trace-consistency oracle catches
// a dump that no longer matches the live run — the defect class of a
// codec or ring bug.
func TestMutationSmokeTamper(t *testing.T) {
	sc := mutantScenario(t)
	art, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for ri := range art.Dump.Rings {
		recs := art.Dump.Rings[ri].Records
		for k := range recs {
			if recs[k].Type == trace.EvRunstateChange {
				recs[k].Time += 1_000_000
				tampered = true
				break
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Fatal("no runstate record to tamper with")
	}
	got := classes(CheckTraceConsistency(art))
	if got[ClassTraceConsistency] == 0 {
		t.Fatal("tampered dump not flagged by the trace-consistency oracle")
	}
}

// TestShrinkFindsSmallerRepro pins the shrinker: for a deliberately
// failing predicate (the starve mutant), Shrink must return a
// still-failing scenario no larger than the original.
func TestShrinkFindsSmallerRepro(t *testing.T) {
	fails := func(sc *Scenario) bool {
		if len(sc.VMs) == 0 {
			return false
		}
		art, err := run(sc, func(inner vmm.Scheduler) vmm.Scheduler {
			return newStarveMutant(inner, 0)
		}, false)
		if err != nil {
			return false
		}
		return len(CheckUtilization(art)) > 0
	}
	seed := mutantScenario(t).Seed
	r := Shrink(seed, mutantCfg, fails)
	if r == nil {
		t.Fatal("Shrink returned nil for a failing scenario")
	}
	if !fails(r.Scenario) {
		t.Fatalf("shrunken scenario %s does not fail", r.Scenario)
	}
	orig := Generate(seed, mutantCfg)
	if len(r.Scenario.VMs) > len(orig.VMs) || r.Scenario.Cores > orig.Cores {
		t.Fatalf("shrunken scenario %s is larger than original %s", r.Scenario, orig)
	}
}
