package vmm

import (
	"fmt"

	"tableau/internal/sim"
	"tableau/internal/trace"
)

// PCPU is one physical core of the simulated machine.
type PCPU struct {
	// ID is the core index.
	ID int
	// Current is the vCPU executing on this core, or nil when idle.
	Current *VCPU

	// IdleTime, BusyTime and OverheadTime partition the core's history:
	// guest execution, scheduler/context-switch overhead, and idling.
	IdleTime     int64
	BusyTime     int64
	OverheadTime int64

	m           *Machine
	workStart   int64      // when the current vCPU segment began
	idleStart   int64      // when the current idle period began
	deadline    int64      // absolute next scheduler invocation (NoTimer if none)
	event       sim.Handle // pending completion/preemption/idle event
	asyncUntil  int64      // end of pending async overhead (wakeup processing)
	kickPending bool
	failed      bool // fail-stop: the core is offline and never schedules again
	invokeGuard int  // invocations at the same timestamp (livelock guard)
	lastInvoke  int64
}

// Failed reports whether the core has fail-stopped (see Machine.FailCore).
func (p *PCPU) Failed() bool { return p.failed }

// Stats aggregates scheduler-operation counts and simulated costs, the
// basis of the Table 1/2 reproduction in simulation.
type Stats struct {
	ScheduleOps     int64
	WakeupOps       int64
	MigrateOps      int64
	ContextSwitches int64
	ScheduleTime    int64
	WakeupTime      int64
	MigrateTime     int64

	// Fault-delivery counters (see internal/faults).
	CoreFailures int64
	CoreStalls   int64
	DroppedIPIs  int64
	DelayedIPIs  int64
}

// Machine is a simulated multicore host under the control of one VM
// scheduler.
type Machine struct {
	// Eng is the discrete-event engine driving the machine.
	Eng *sim.Engine
	// CPUs are the physical cores.
	CPUs []*PCPU
	// VCPUs are all virtual CPUs, indexed by VCPU.ID.
	VCPUs []*VCPU
	// Sched is the active VM scheduler.
	Sched Scheduler
	// Ov is the operation cost model charged against the cores.
	Ov OverheadModel
	// Stats accumulates scheduler-operation statistics.
	Stats Stats

	// locks[d] is the time at which lock domain d becomes free; nil
	// when the scheduler is lock-free.
	locks []int64

	// ipiFault and timerFault are optional fault-injection hooks
	// (installed by internal/faults). Both must be pure functions of
	// their arguments so runs stay deterministic: ipiFault decides
	// whether a rescheduling IPI to a core is dropped or delivered with
	// extra latency; timerFault returns the lateness of a timer due at
	// the given time on a core.
	ipiFault   func(core int, now int64) (drop bool, delay int64)
	timerFault func(core int, at int64) int64

	// trace, when set, receives a binary record at every scheduling
	// transition (see internal/trace). A nil tracer costs one pointer
	// test per site.
	trace *trace.Tracer

	started bool
	stopped bool
}

// SetTracer installs a scheduling tracer. Must be called before Start,
// which binds the tracer to the machine's topology.
func (m *Machine) SetTracer(t *trace.Tracer) {
	if m.started {
		panic("vmm: SetTracer after Start")
	}
	m.trace = t
}

// Tracer returns the machine's tracer, nil when tracing is off.
// Schedulers cache it at Attach to emit their own records.
func (m *Machine) Tracer() *trace.Tracer { return m.trace }

// traceState maps a vCPU state to its trace-format runstate code. The
// two enums are kept separate so the trace format never shifts under a
// vmm refactor.
func traceState(s State) int64 {
	switch s {
	case Running:
		return trace.StateRunning
	case Blocked:
		return trace.StateBlocked
	case Dead:
		return trace.StateDead
	}
	return trace.StateRunnable
}

// SetIPIFault installs a hook consulted on every Kick: it may drop the
// rescheduling IPI or delay its delivery. The hook must be a pure
// function of (core, now) — window-based fault plans are; per-call
// randomness would break reproducibility.
func (m *Machine) SetIPIFault(f func(core int, now int64) (drop bool, delay int64)) { m.ipiFault = f }

// SetTimerFault installs a hook returning the lateness (>= 0) of a
// timer interrupt due at time at on the given core, modelling timer
// drift or late-firing timers. The hook must be pure in (core, at).
func (m *Machine) SetTimerFault(f func(core int, at int64) int64) { m.timerFault = f }

// timerAt applies the timer fault model to a timer-driven event due at
// time at on cpu.
func (m *Machine) timerAt(cpu *PCPU, at int64) int64 {
	if m.timerFault == nil || at == NoTimer {
		return at
	}
	if late := m.timerFault(cpu.ID, at); late > 0 {
		return at + late
	}
	return at
}

// New creates a machine with the given core count, scheduler, and
// overhead model. Add vCPUs with AddVCPU, then call Start.
func New(eng *sim.Engine, cores int, sched Scheduler, ov OverheadModel) *Machine {
	if cores <= 0 {
		panic("vmm: machine needs at least one core")
	}
	m := &Machine{Eng: eng, Sched: sched, Ov: ov}
	for i := 0; i < cores; i++ {
		m.CPUs = append(m.CPUs, &PCPU{ID: i, m: m, deadline: NoTimer})
	}
	if ov.LockDomainCores > 0 {
		nd := (cores + ov.LockDomainCores - 1) / ov.LockDomainCores
		m.locks = make([]int64, nd)
	}
	return m
}

// lockedCost returns the effective cost of a scheduler operation with
// base cost base issued from cpu at time at (the moment the CPU actually
// reaches the operation, after any earlier overhead in the same
// invocation): the base (lock hold time) plus any wait for the cpu's
// lock domain. The domain's release time advances by the hold time, so
// operations from other CPUs in the same domain queue.
func (m *Machine) lockedCost(cpu *PCPU, base, now int64) int64 {
	if base == 0 || m.locks == nil {
		return base
	}
	d := cpu.ID / m.Ov.LockDomainCores
	free := m.locks[d]
	if free < now {
		free = now
	}
	free += base
	m.locks[d] = free
	return free - now
}

// AddVCPU registers a vCPU running the given program. Must be called
// before Start.
func (m *Machine) AddVCPU(name string, prog Program, weight int, capped bool) *VCPU {
	if m.started {
		panic("vmm: AddVCPU after Start")
	}
	v := &VCPU{
		ID:         len(m.VCPUs),
		Name:       name,
		Weight:     weight,
		Capped:     capped,
		State:      Runnable,
		CurrentCPU: -1,
		LastCPU:    -1,
		prog:       prog,
	}
	m.VCPUs = append(m.VCPUs, v)
	return v
}

// Start attaches the scheduler and schedules the initial dispatch on
// every core at the current time.
func (m *Machine) Start() {
	if m.started {
		panic("vmm: double Start")
	}
	m.started = true
	m.trace.Bind(len(m.CPUs), len(m.VCPUs))
	m.Sched.Attach(m)
	for _, cpu := range m.CPUs {
		cpu.idleStart = m.Eng.Now()
		c := cpu
		cpu.event = m.Eng.After(0, func(now int64) { m.invoke(c, now) })
	}
}

// Run advances the simulation until the given absolute time and flushes
// accounting so per-CPU and per-vCPU totals cover exactly [start, until).
func (m *Machine) Run(until int64) {
	m.Eng.RunUntil(until)
	for _, cpu := range m.CPUs {
		m.accountProgress(cpu, until)
	}
}

// Now returns the current virtual time.
func (m *Machine) Now() int64 { return m.Eng.Now() }

// Stop tears the machine down: accounting is flushed to the current
// time and every core's pending event is canceled through its handle,
// so the engine owns the entire event lifecycle (no ad-hoc draining).
// Events scheduled by programs or workloads (timed wakes, request
// arrivals) stay queued; the engine's Len/Pending report what remains.
// Stop returns the number of live events still pending. The machine
// must not be Run again after Stop.
func (m *Machine) Stop() int {
	m.stopped = true
	now := m.Eng.Now()
	for _, cpu := range m.CPUs {
		m.accountProgress(cpu, now)
		cpu.event.Cancel()
		cpu.event = sim.Handle{}
		cpu.kickPending = false
		cpu.deadline = NoTimer
	}
	return m.Eng.Pending()
}

// FailCore fail-stops a core: accounting is flushed, the pending event
// is canceled, the vCPU running there (if any) is descheduled back to
// Runnable (its state survives; on real hardware it would be restored
// from the last checkpoint), and the core never invokes its scheduler
// again. Kicks to a failed core are dropped. Schedulers implementing
// CoreFailureObserver are told so they can remap the dead core's work;
// other schedulers receive a synthetic OnWake for the descheduled vCPU
// so it is re-queued somewhere a surviving core can find it.
func (m *Machine) FailCore(id int) {
	cpu := m.CPUs[id]
	if cpu.failed || m.stopped {
		return
	}
	now := m.Eng.Now()
	m.accountProgress(cpu, now)
	cpu.failed = true
	cpu.event.Cancel()
	cpu.event = sim.Handle{}
	cpu.kickPending = false
	cpu.deadline = NoTimer
	cpu.idleStart = now
	m.Stats.CoreFailures++
	if m.trace != nil {
		m.trace.Emit(trace.EvFaultInjected, id, now, -1, trace.FaultFailStop, 0)
	}
	v := cpu.Current
	if v != nil {
		if v.State == Running {
			v.State = Runnable
			if m.trace != nil {
				m.trace.Emit(trace.EvRunstateChange, id, cpu.descheduleStamp(now), v.ID, trace.StateRunning, trace.StateRunnable)
			}
		}
		v.CurrentCPU = -1
		cpu.Current = nil
		if obs, ok := m.Sched.(DescheduleObserver); ok {
			obs.OnDeschedule(v, cpu, now)
		}
	}
	if obs, ok := m.Sched.(CoreFailureObserver); ok {
		obs.OnCoreFail(id, now)
	} else if v != nil && v.State == Runnable {
		// Generic requeue path: schedulers without explicit failure
		// handling treat the orphaned vCPU like a fresh wakeup, which
		// re-enqueues it where work stealing or load balancing can reach
		// it.
		m.Sched.OnWake(v, now)
	}
}

// StallCore stalls a core for d ns (an SMI-like transient fault): the
// time is charged as overhead, stealing it from whatever the core is
// doing, and the core's pending event is pushed back accordingly.
func (m *Machine) StallCore(id int, d int64) {
	cpu := m.CPUs[id]
	if d <= 0 || cpu.failed || m.stopped {
		return
	}
	m.Stats.CoreStalls++
	if m.trace != nil {
		m.trace.Emit(trace.EvFaultInjected, id, m.Eng.Now(), -1, trace.FaultStall, d)
	}
	m.chargeAsync(cpu, d, m.Eng.Now())
}

// CoreOnline reports whether the core has not fail-stopped.
func (m *Machine) CoreOnline(id int) bool { return !m.CPUs[id].failed }

// OnlineCores returns the number of cores that have not fail-stopped.
func (m *Machine) OnlineCores() int {
	n := 0
	for _, cpu := range m.CPUs {
		if !cpu.failed {
			n++
		}
	}
	return n
}

// descheduleStamp returns the trace timestamp for descheduling the
// core's running vCPU. Dispatches are stamped at their work start,
// which pending asynchronous overhead (a core stall, wakeup handling)
// can push past a preemption arriving mid-window; clamping the
// running→runnable record to no earlier than the recorded start keeps
// every vCPU's traced timeline monotonic, so residency replay never
// charges the same span twice.
func (cpu *PCPU) descheduleStamp(now int64) int64 {
	if cpu.workStart > now {
		return cpu.workStart
	}
	return now
}

// accountProgress charges the time since the core's last accounting
// point to either its running vCPU or its idle counter, and resets the
// segment start to now.
func (m *Machine) accountProgress(cpu *PCPU, now int64) {
	if cpu.Current != nil && cpu.Current.State == Running {
		if ran := now - cpu.workStart; ran > 0 {
			cpu.Current.remaining -= ran
			cpu.Current.RunTime += ran
			cpu.BusyTime += ran
			cpu.workStart = now
		}
	} else if cpu.Current == nil {
		if idle := now - cpu.idleStart; idle > 0 {
			cpu.IdleTime += idle
			cpu.idleStart = now
		}
	}
}

// invoke runs the scheduler on cpu at time now. This is the only place
// where vCPUs are placed on or removed from cores.
func (m *Machine) invoke(cpu *PCPU, now int64) {
	cpu.event = sim.Handle{}
	cpu.kickPending = false
	if cpu.failed {
		return
	}
	if now == cpu.lastInvoke {
		cpu.invokeGuard++
		if cpu.invokeGuard > 64 {
			panic(fmt.Sprintf("vmm: scheduler livelock on cpu %d at t=%d", cpu.ID, now))
		}
	} else {
		cpu.lastInvoke, cpu.invokeGuard = now, 0
	}
	m.accountProgress(cpu, now)
	prev := cpu.Current
	if prev != nil && prev.State == Running {
		prev.State = Runnable
		if m.trace != nil {
			m.trace.Emit(trace.EvRunstateChange, cpu.ID, cpu.descheduleStamp(now), prev.ID, trace.StateRunning, trace.StateRunnable)
		}
	}

	// The invocation cannot begin until pending asynchronous overhead
	// (wakeup processing) has drained on this core.
	start := now
	if cpu.asyncUntil > start {
		start = cpu.asyncUntil
	}
	start += m.chargeOp(cpu, m.lockedCost(cpu, m.Ov.Schedule, start), &m.Stats.ScheduleOps, &m.Stats.ScheduleTime)

	var d Decision
	for tries := 0; ; tries++ {
		if tries > len(m.VCPUs)+2 {
			panic(fmt.Sprintf("vmm: scheduler %s keeps returning unrunnable vCPUs on cpu %d", m.Sched.Name(), cpu.ID))
		}
		d = m.Sched.PickNext(cpu, now)
		// The scheduler has now processed the outgoing vCPU (requeue,
		// accounting). Clear Current so retry iterations — after a
		// picked vCPU blocks at work-fetch — do not make schedulers
		// process it twice.
		cpu.Current = nil
		if d.VCPU == nil {
			break
		}
		if d.VCPU.State == Dead {
			continue
		}
		if d.VCPU.State == Running && d.VCPU.CurrentCPU != cpu.ID {
			// Dispatching a vCPU that is running elsewhere would corrupt
			// its stack on real hardware (paper Sec. 6); any scheduler
			// doing this is broken.
			panic(fmt.Sprintf("vmm: scheduler %s dispatched %s on cpu %d while it runs on cpu %d",
				m.Sched.Name(), d.VCPU.Name, cpu.ID, d.VCPU.CurrentCPU))
		}
		if d.VCPU.remaining > 0 {
			break
		}
		if m.fetchWork(d.VCPU, now) {
			break
		}
		// The picked vCPU blocked immediately; the scheduler has been
		// told via OnBlock. Pick again, paying another invocation.
		start += m.chargeOp(cpu, m.lockedCost(cpu, m.Ov.Schedule, start), &m.Stats.ScheduleOps, &m.Stats.ScheduleTime)
	}

	next := d.VCPU
	if prev != nil && next != prev {
		// Post-deschedule work ("Migrate" in the paper's tables).
		start += m.chargeOp(cpu, m.lockedCost(cpu, m.Ov.Migrate, start), &m.Stats.MigrateOps, &m.Stats.MigrateTime)
		prev.CurrentCPU = -1
		if obs, ok := m.Sched.(DescheduleObserver); ok {
			obs.OnDeschedule(prev, cpu, now)
		}
	}
	if next == nil {
		if prev != nil && m.trace != nil {
			m.trace.Emit(trace.EvContextSwitch, cpu.ID, now, -1, int64(prev.ID), 0)
		}
		cpu.Current = nil
		cpu.idleStart = start
		cpu.deadline = d.Until
		if d.Until != NoTimer {
			at := m.timerAt(cpu, d.Until)
			if at < start {
				at = start
			}
			c := cpu
			cpu.event = m.Eng.At(at, func(n int64) { m.invoke(c, n) })
		}
		return
	}
	if next != prev {
		m.Stats.ContextSwitches++
		cpu.OverheadTime += m.Ov.ContextSwitch
		start += m.Ov.ContextSwitch
		if m.trace != nil {
			out := int64(-1)
			if prev != nil {
				out = int64(prev.ID)
			}
			m.trace.Emit(trace.EvContextSwitch, cpu.ID, now, next.ID, out, 0)
			if next.LastCPU >= 0 && next.LastCPU != cpu.ID {
				m.trace.Emit(trace.EvMigrate, cpu.ID, now, next.ID, int64(next.LastCPU), 0)
			}
		}
	}
	if m.trace != nil {
		// The dispatch is stamped at start, when the vCPU actually begins
		// executing (after scheduling and context-switch overheads): the
		// runnable→running gap is the paper's scheduling latency.
		m.trace.Emit(trace.EvRunstateChange, cpu.ID, start, next.ID, traceState(next.State), trace.StateRunning)
	}
	next.State = Running
	next.CurrentCPU = cpu.ID
	next.LastCPU = cpu.ID
	cpu.Current = next
	cpu.workStart = start
	cpu.deadline = d.Until
	m.armEvent(cpu, start)
}

// armEvent schedules the core's next action event: burst completion or
// scheduler deadline, whichever is earlier (never before start). A
// timer-driven deadline (preemption) is subject to the timer fault
// model; burst completions are program behaviour, not timers.
func (m *Machine) armEvent(cpu *PCPU, start int64) {
	end := start + cpu.Current.remaining
	if cpu.deadline < end {
		end = m.timerAt(cpu, cpu.deadline)
	}
	if end < start {
		end = start
	}
	c := cpu
	cpu.event = m.Eng.At(end, func(now int64) { m.cpuEvent(c, now) })
}

// chargeOp charges an operation cost against the core and global stats,
// returning the cost so callers can advance their local start time.
func (m *Machine) chargeOp(cpu *PCPU, cost int64, ops *int64, total *int64) int64 {
	*ops++
	*total += cost
	cpu.OverheadTime += cost
	return cost
}

// cpuEvent handles the core's pending event: either the running vCPU's
// burst completed, or the scheduler deadline arrived.
func (m *Machine) cpuEvent(cpu *PCPU, now int64) {
	cpu.event = sim.Handle{}
	if cpu.failed {
		return
	}
	m.accountProgress(cpu, now)
	if cpu.kickPending {
		// A rescheduling IPI arrived; the scheduler must run now even if
		// the program could have continued.
		m.invoke(cpu, now)
		return
	}
	v := cpu.Current
	if v == nil {
		// Idle deadline: time-driven scheduler re-invocation.
		m.invoke(cpu, now)
		return
	}
	if v.remaining <= 0 {
		if now < cpu.deadline && m.fetchWork(v, now) {
			// The program continues computing; no scheduler involvement.
			cpu.workStart = now
			m.armEvent(cpu, now)
			return
		}
		// Blocked, died, or deadline reached exactly at completion.
		m.invoke(cpu, now)
		return
	}
	// Preemption: the scheduler's deadline arrived.
	m.invoke(cpu, now)
}

// fetchWork advances v's program until it produces computable work.
// It returns true if v now has a compute burst pending; false if the
// program blocked (state Blocked, scheduler informed, timed wake
// scheduled if requested) or terminated (state Dead).
func (m *Machine) fetchWork(v *VCPU, now int64) bool {
	for i := 0; ; i++ {
		if i > 10_000 {
			panic(fmt.Sprintf("vmm: program of %s livelocked (10k zero-length actions)", v.Name))
		}
		a := v.prog.Next(m, v, now)
		switch a.Kind {
		case ActCompute:
			if a.Duration <= 0 {
				continue
			}
			v.remaining = a.Duration
			return true
		case ActBlock:
			if m.trace != nil {
				m.trace.Emit(trace.EvRunstateChange, v.traceCPU(), now, v.ID, traceState(v.State), trace.StateBlocked)
			}
			v.State = Blocked
			m.Sched.OnBlock(v, now)
			if a.Duration >= 0 {
				vv := v
				m.Eng.After(a.Duration, func(int64) { m.Wake(vv) })
			}
			return false
		case ActDone:
			if m.trace != nil {
				m.trace.Emit(trace.EvRunstateChange, v.traceCPU(), now, v.ID, traceState(v.State), trace.StateDead)
			}
			v.State = Dead
			m.Sched.OnBlock(v, now)
			return false
		default:
			panic(fmt.Sprintf("vmm: unknown action kind %d", a.Kind))
		}
	}
}

// Wake delivers a wake event to v (I/O completion, incoming request,
// ping arrival). It is a no-op unless v is blocked. Wakeup-processing
// cost is charged to the core that last ran v (where the paper's wakeup
// logic executes), and the scheduler is notified so it can enqueue v
// and kick a core.
func (m *Machine) Wake(v *VCPU) {
	if v.State != Blocked || m.stopped {
		return
	}
	now := m.Eng.Now()
	v.State = Runnable
	v.Wakeups++
	v.LastWake = now
	proc := v.LastCPU
	if proc < 0 {
		proc = 0
	}
	if m.CPUs[proc].failed {
		// Wakeup processing migrates to the lowest-numbered online core
		// when the vCPU's last core has fail-stopped.
		for _, cpu := range m.CPUs {
			if !cpu.failed {
				proc = cpu.ID
				break
			}
		}
	}
	if m.trace != nil {
		m.trace.Emit(trace.EvRunstateChange, proc, now, v.ID, trace.StateBlocked, trace.StateRunnable)
	}
	cost := m.lockedCost(m.CPUs[proc], m.Ov.Wakeup, now)
	m.chargeAsync(m.CPUs[proc], cost, now)
	m.Stats.WakeupOps++
	m.Stats.WakeupTime += cost
	m.Sched.OnWake(v, now)
}

// chargeAsync charges an asynchronous processing cost (e.g. wakeup
// handling) against a core, stealing the time from whatever the core is
// doing by pushing back its pending event.
func (m *Machine) chargeAsync(cpu *PCPU, cost int64, now int64) {
	if cost == 0 {
		return
	}
	cpu.OverheadTime += cost
	m.accountProgress(cpu, now)
	// The async window must begin after any overhead window already in
	// progress on this core (pending async work, or the schedule/context
	// switch gap before workStart/idleStart), so overhead periods never
	// overlap and the busy+idle+overhead identity holds exactly.
	begin := now
	if cpu.asyncUntil > begin {
		begin = cpu.asyncUntil
	}
	switch {
	case cpu.Current != nil && cpu.Current.State == Running && cpu.event.Scheduled():
		if cpu.workStart > begin {
			begin = cpu.workStart
		}
		cpu.asyncUntil = begin + cost
		cpu.event.Cancel()
		cpu.workStart = cpu.asyncUntil
		m.armEvent(cpu, cpu.workStart)
	case cpu.Current == nil:
		if cpu.idleStart > begin {
			begin = cpu.idleStart
		}
		cpu.asyncUntil = begin + cost
		cpu.idleStart = cpu.asyncUntil
	default:
		cpu.asyncUntil = begin + cost
	}
}

// Kick requests a scheduler invocation on the given core, modelling a
// rescheduling IPI: the invocation happens after the IPI latency.
// Redundant kicks (one already pending, or the core will act at least
// as soon anyway) are dropped.
func (m *Machine) Kick(cpuID int) {
	cpu := m.CPUs[cpuID]
	if cpu.kickPending || m.stopped || cpu.failed {
		return
	}
	now := m.Eng.Now()
	at := now + m.Ov.IPI
	disposition, ipiDelay := trace.IPISent, int64(0)
	if m.ipiFault != nil {
		drop, delay := m.ipiFault(cpuID, now)
		if drop {
			m.Stats.DroppedIPIs++
			if m.trace != nil {
				m.trace.Emit(trace.EvIPI, cpuID, now, -1, trace.IPIDropped, 0)
			}
			return
		}
		if delay > 0 {
			m.Stats.DelayedIPIs++
			at += delay
			disposition, ipiDelay = trace.IPIDelayed, delay
		}
	}
	if m.trace != nil {
		m.trace.Emit(trace.EvIPI, cpuID, now, -1, disposition, ipiDelay)
	}
	cpu.kickPending = true
	if cpu.event.Scheduled() {
		if cpu.event.When() <= at {
			// The core acts at least as soon anyway; cpuEvent notices
			// kickPending and invokes the scheduler instead of letting
			// the program continue uninterrupted.
			return
		}
		cpu.event.Cancel()
	}
	c := cpu
	cpu.event = m.Eng.At(at, func(n int64) { m.invoke(c, n) })
}

// GuestTime returns the total CPU time delivered to guests across all
// cores.
func (m *Machine) GuestTime() int64 {
	var t int64
	for _, c := range m.CPUs {
		t += c.BusyTime
	}
	return t
}

// OverheadTime returns the total time lost to scheduler operations and
// context switches across all cores.
func (m *Machine) OverheadTime() int64 {
	var t int64
	for _, c := range m.CPUs {
		t += c.OverheadTime
	}
	return t
}
