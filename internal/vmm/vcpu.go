// Package vmm models a multicore machine running a hypervisor VM
// scheduler: physical CPUs, virtual CPUs with workload programs,
// scheduler-invocation overheads, context switches, IPIs, and wakeups.
// It is the discrete-event substitute for the paper's Xen/Intel-Xeon
// testbed: every quantity the paper measures (who runs when, scheduling
// latency, cycles lost to the scheduler) is reproduced by this model.
package vmm

import "fmt"

// State is the lifecycle state of a vCPU.
type State int

const (
	// Runnable vCPUs are ready to execute and waiting for a pCPU.
	Runnable State = iota
	// Running vCPUs are currently executing on a pCPU.
	Running
	// Blocked vCPUs are waiting for an I/O completion or external event.
	Blocked
	// Dead vCPUs have finished their program.
	Dead
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ActionKind discriminates the actions a workload program can request.
type ActionKind int

const (
	// ActCompute executes on the CPU for Duration ns.
	ActCompute ActionKind = iota
	// ActBlock blocks the vCPU. If Duration >= 0 the machine wakes it
	// after Duration ns (modelling an I/O operation of known latency);
	// if Duration < 0 the vCPU sleeps until an external Wake.
	ActBlock
	// ActDone terminates the program; the vCPU never runs again.
	ActDone
)

// An Action is one step of a workload program.
type Action struct {
	Kind     ActionKind
	Duration int64
}

// Compute returns an action that burns d ns of CPU time.
func Compute(d int64) Action { return Action{Kind: ActCompute, Duration: d} }

// Block returns an action that blocks for d ns (an I/O with known
// latency).
func Block(d int64) Action { return Action{Kind: ActBlock, Duration: d} }

// BlockIndefinitely returns an action that blocks until an external
// Wake, e.g. a server waiting for the next request.
func BlockIndefinitely() Action { return Action{Kind: ActBlock, Duration: -1} }

// Done returns the terminating action.
func Done() Action { return Action{Kind: ActDone} }

// A Program drives a vCPU's behaviour. Next is called whenever the vCPU
// is about to execute and has no pending work: at first dispatch, after
// each compute burst completes, and after each wakeup. now is the
// current virtual time. Programs are single-threaded with respect to
// their vCPU; they may freely keep state and read machine time.
type Program interface {
	Next(m *Machine, v *VCPU, now int64) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(m *Machine, v *VCPU, now int64) Action

// Next implements Program.
func (f ProgramFunc) Next(m *Machine, v *VCPU, now int64) Action { return f(m, v, now) }

// A VCPU is one virtual CPU belonging to a VM.
type VCPU struct {
	// ID is the index of this vCPU in Machine.VCPUs.
	ID int
	// Name identifies the vCPU for reporting.
	Name string
	// Weight is the proportional-share weight (Credit/Credit2).
	Weight int
	// Capped vCPUs may not exceed their reservation (Credit cap, RTDS
	// budget, Tableau table-only mode).
	Capped bool

	// State is maintained by the machine.
	State State
	// CurrentCPU is the pCPU currently running this vCPU, or -1.
	CurrentCPU int
	// LastCPU is the pCPU that most recently ran this vCPU, or -1.
	LastCPU int

	// RunTime is the total CPU time consumed, in ns.
	RunTime int64
	// Wakeups counts wake events delivered to this vCPU.
	Wakeups int64
	// LastWake is the time of the most recent wake event.
	LastWake int64

	// SchedData is private per-vCPU state for the active scheduler.
	SchedData interface{}

	prog      Program
	remaining int64 // ns left in the current compute burst
}

// Remaining returns the ns left in the vCPU's current compute burst
// (for tests and tracing).
func (v *VCPU) Remaining() int64 { return v.remaining }

// traceCPU returns the pCPU whose trace ring should record an event
// about this vCPU: the core it is on, else the core it last ran on
// (negative routes to the control ring).
func (v *VCPU) traceCPU() int {
	if v.CurrentCPU >= 0 {
		return v.CurrentCPU
	}
	return v.LastCPU
}

func (v *VCPU) String() string {
	return fmt.Sprintf("vcpu%d(%s,%v)", v.ID, v.Name, v.State)
}
