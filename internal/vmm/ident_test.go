package vmm

import (
	"testing"

	"tableau/internal/sim"
)

func TestAccountingIdentityUnderContention(t *testing.T) {
	ov := OverheadModel{Schedule: 2000, Wakeup: 1500, Migrate: 3000, ContextSwitch: 500, IPI: 100, LockDomainCores: 4}
	eng := sim.New(3)
	s := &rrScheduler{slice: 500_000}
	m := New(eng, 4, s, ov)
	for i := 0; i < 12; i++ {
		m.AddVCPU("io", blockerProgram(30_000, 20_000), 256, false)
	}
	m.Start()
	const horizon = 50_000_000
	m.Run(horizon)
	var slack int64
	for _, cpu := range m.CPUs {
		total := cpu.BusyTime + cpu.IdleTime + cpu.OverheadTime
		diff := total - horizon
		if diff < 0 {
			diff = -diff
		}
		slack += diff
		if diff > 10_000 {
			t.Errorf("cpu %d: busy=%d idle=%d ovh=%d total=%d vs %d (diff %d)",
				cpu.ID, cpu.BusyTime, cpu.IdleTime, cpu.OverheadTime, total, horizon, total-horizon)
		}
	}
	t.Logf("total slack %d ns", slack)
}
