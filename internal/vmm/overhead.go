package vmm

// OverheadModel gives the simulated cost, in ns, of each scheduler
// operation, plus the lock structure protecting the scheduler's queues.
// The machine charges these against the CPU on which the operation
// runs, so overhead directly steals time from guest work — the
// mechanism by which high-overhead schedulers lose throughput under
// frequent invocation (paper Sec. 2.2, 7.4).
//
// Costs are *uncontended* hot-path costs. Contention is modelled
// explicitly: every per-op cost is work done under the scheduler's
// queue lock, and ops whose CPUs share a lock domain serialize, so the
// observed per-op cost grows with machine size and invocation rate.
// This reproduces the paper's Tables 1 and 2 non-circularly: RTDS's
// global lock pushes its measured migrate cost from ~9 µs on 16 cores
// to ~169 µs on 48 cores (Table 2) purely through queueing, while
// Tableau's lock-free core-local tables stay flat.
type OverheadModel struct {
	// Schedule is charged on every PickNext invocation.
	Schedule int64
	// Wakeup is charged on the CPU that processes a wake event.
	Wakeup int64
	// Migrate is charged after descheduling a vCPU (post-schedule work:
	// re-schedule IPIs, load balancing; the paper's "Migrate" row).
	Migrate int64
	// ContextSwitch is charged when the CPU switches between two
	// different vCPUs (register/VMCS switching; scheduler-independent).
	ContextSwitch int64
	// IPI is the latency of a rescheduling inter-processor interrupt.
	IPI int64

	// LockDomainCores groups CPUs into lock domains of this many cores:
	// scheduler operations issued from CPUs of the same domain
	// serialize against each other. 0 means lock-free (core-local data
	// structures only, like Tableau); 1 means a per-CPU lock (no cross-
	// CPU contention, like Credit's per-CPU runqueues); a large value
	// covering all CPUs models a single global lock (RTDS).
	LockDomainCores int
}

// Default platform costs, scheduler-independent.
const (
	defaultContextSwitch = 1_500 // 1.5 µs
	defaultIPI           = 1_000 // 1 µs
)

// paperTable1 and paperTable2 record the operation costs the paper
// measured ({schedule, wakeup, migrate}, ns) on its 16-core/2-socket
// and 48-core/4-socket machines. They are reference targets for the
// emergent costs of the contention model (EXPERIMENTS.md) and are
// exported through PaperOverheads.
var paperTable1 = map[string][3]int64{
	"credit":  {8_080, 2_120, 320},
	"credit2": {3_510, 5_190, 5_550},
	"rtds":    {2_860, 3_900, 9_420},
	"tableau": {1_430, 1_060, 430},
}

var paperTable2 = map[string][3]int64{
	"credit":  {16_400, 7_070, 420},
	"credit2": {4_700, 5_610, 18_190},
	"rtds":    {4_390, 19_160, 168_620},
	"tableau": {2_490, 1_820, 660},
}

// PaperOverheads returns the paper's measured mean cost of the
// (schedule, wakeup, migrate) operations for the named scheduler on a
// 16-core (Table 1) or 48-core (Table 2) machine. ok is false for
// unknown schedulers or other core counts.
func PaperOverheads(scheduler string, cores int) (ops [3]int64, ok bool) {
	switch cores {
	case 16:
		ops, ok = paperTable1[scheduler]
	case 48:
		ops, ok = paperTable2[scheduler]
	}
	return ops, ok
}

// Overheads returns the overhead model for the named scheduler
// ("credit", "credit2", "rtds", "tableau") on a machine with the given
// total core count.
//
//   - Credit: expensive decision path (sorted runqueue walk plus credit
//     accounting) behind per-CPU locks — costly but scale-tolerant.
//   - Credit2: moderate costs behind one lock per 8-core socket.
//   - RTDS: cheap EDF comparisons, but every operation — including the
//     post-deschedule load balancing ("migrate") — runs under one
//     global lock, so costs balloon with core count.
//   - Tableau: table lookup touching at most two cache lines, wakeup
//     routing via the table, an occasional IPI after deschedule; all
//     core-local and lock-free (paper Sec. 6).
//
// Unknown schedulers get zero per-op cost with default platform costs.
func Overheads(scheduler string, cores int) OverheadModel {
	m := OverheadModel{ContextSwitch: defaultContextSwitch, IPI: defaultIPI}
	switch scheduler {
	case "credit":
		m.Schedule, m.Wakeup, m.Migrate = 7_800, 2_000, 300
		m.LockDomainCores = 1
	case "credit2":
		m.Schedule, m.Wakeup, m.Migrate = 2_600, 3_900, 4_200
		m.LockDomainCores = 8
	case "rtds":
		m.Schedule, m.Wakeup, m.Migrate = 1_400, 1_800, 4_200
		m.LockDomainCores = cores
	case "tableau":
		m.Schedule, m.Wakeup, m.Migrate = 1_430, 1_060, 430
		m.LockDomainCores = 0
	}
	return m
}

// NoOverheads returns a model with all costs zero, for tests that need
// to reason about pure scheduling behaviour.
func NoOverheads() OverheadModel { return OverheadModel{} }
