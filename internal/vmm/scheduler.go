package vmm

import "math"

// NoTimer as Decision.Until means the scheduler does not need a
// time-driven re-invocation; the machine will call it again only when
// the running vCPU blocks or the CPU is kicked.
const NoTimer = int64(math.MaxInt64)

// A Decision is a scheduler's answer to "who runs next on this CPU".
type Decision struct {
	// VCPU is the vCPU to dispatch, or nil to idle.
	VCPU *VCPU
	// Until is the absolute time at which the scheduler must be
	// re-invoked on this CPU (end of timeslice, table interval, budget),
	// or NoTimer.
	Until int64
}

// A Scheduler multiplexes vCPUs onto pCPUs. Implementations keep their
// run queues internally (global or per-CPU) and are invoked by the
// machine:
//
//   - PickNext whenever CPU cpu needs a decision: at start, when the
//     running vCPU blocks or dies, when Decision.Until expires, and
//     after a Kick. The previously running vCPU (if any) has already
//     been charged for its progress and is in state Runnable (or
//     Blocked/Dead if that is why the scheduler is being invoked).
//   - OnWake when a blocked vCPU becomes runnable. The scheduler should
//     enqueue it and may call Machine.Kick to interrupt a CPU.
//   - OnBlock when a running vCPU blocks (bookkeeping only; the machine
//     follows up with PickNext on the affected CPU).
//
// All calls are made from the single-threaded simulation loop.
type Scheduler interface {
	// Name returns the scheduler's short name ("credit", "tableau", ...).
	Name() string
	// Attach gives the scheduler its machine before the run starts.
	Attach(m *Machine)
	// PickNext selects the next vCPU for cpu at time now.
	PickNext(cpu *PCPU, now int64) Decision
	// OnWake notifies that v transitioned Blocked -> Runnable.
	OnWake(v *VCPU, now int64)
	// OnBlock notifies that v transitioned Running -> Blocked.
	OnBlock(v *VCPU, now int64)
}

// DescheduleObserver is an optional Scheduler extension: if implemented,
// OnDeschedule is called whenever a vCPU is removed from a core (because
// it blocked, died, or lost the core to another vCPU). Tableau's
// dispatcher uses this to deliver the deferred rescheduling IPIs of its
// cross-core migration protocol (paper Sec. 6).
type DescheduleObserver interface {
	OnDeschedule(v *VCPU, cpu *PCPU, now int64)
}

// CoreFailureObserver is an optional Scheduler extension: if
// implemented, OnCoreFail is called when a core fail-stops (see
// Machine.FailCore), after the vCPU running there has been descheduled.
// Tableau's dispatcher uses this to remap the dead core's table slices
// onto surviving cores' second-level schedulers (degraded mode).
// Schedulers that do not implement it get a generic recovery: the
// machine re-delivers the descheduled vCPU through OnWake so ordinary
// work stealing or load balancing can pick it up.
type CoreFailureObserver interface {
	OnCoreFail(core int, now int64)
}
