package vmm

import (
	"testing"

	"tableau/internal/sim"
)

// rrScheduler is a minimal global round-robin scheduler used to exercise
// the machine model in tests.
type rrScheduler struct {
	m     *Machine
	queue []*VCPU
	slice int64
}

func (s *rrScheduler) Name() string { return "test-rr" }
func (s *rrScheduler) Attach(m *Machine) {
	s.m = m
	for _, v := range m.VCPUs {
		s.queue = append(s.queue, v)
	}
}
func (s *rrScheduler) PickNext(cpu *PCPU, now int64) Decision {
	// Requeue the vCPU that just ran.
	if prev := cpu.Current; prev != nil && prev.State == Runnable {
		s.queue = append(s.queue, prev)
	}
	for len(s.queue) > 0 {
		v := s.queue[0]
		s.queue = s.queue[1:]
		if v.State == Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			return Decision{VCPU: v, Until: now + s.slice}
		}
	}
	return Decision{Until: NoTimer}
}
func (s *rrScheduler) OnWake(v *VCPU, now int64) {
	s.queue = append(s.queue, v)
	for _, cpu := range s.m.CPUs {
		if cpu.Current == nil {
			s.m.Kick(cpu.ID)
			return
		}
	}
}
func (s *rrScheduler) OnBlock(v *VCPU, now int64) {
	// Drop any stale queue entries lazily (PickNext re-checks state).
}

func newRRMachine(t *testing.T, cores int, ov OverheadModel) (*Machine, *rrScheduler) {
	t.Helper()
	eng := sim.New(1)
	s := &rrScheduler{slice: 1_000_000}
	m := New(eng, cores, s, ov)
	return m, s
}

// spinner computes forever.
func spinner() Program {
	return ProgramFunc(func(m *Machine, v *VCPU, now int64) Action {
		return Compute(1_000_000)
	})
}

func TestSingleSpinnerConsumesCore(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	v := m.AddVCPU("spin", spinner(), 256, false)
	m.Start()
	m.Run(10_000_000)
	if v.RunTime != 10_000_000 {
		t.Errorf("RunTime = %d, want 10ms", v.RunTime)
	}
	if m.CPUs[0].IdleTime != 0 {
		t.Errorf("IdleTime = %d, want 0", m.CPUs[0].IdleTime)
	}
}

func TestTwoSpinnersShareCore(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	a := m.AddVCPU("a", spinner(), 256, false)
	b := m.AddVCPU("b", spinner(), 256, false)
	m.Start()
	m.Run(10_000_000)
	if a.RunTime+b.RunTime != 10_000_000 {
		t.Errorf("total runtime = %d, want 10ms", a.RunTime+b.RunTime)
	}
	// Round-robin with 1 ms slices: equal shares.
	if a.RunTime != b.RunTime {
		t.Errorf("unfair split: a=%d b=%d", a.RunTime, b.RunTime)
	}
}

func TestAccountingIdentity(t *testing.T) {
	ov := OverheadModel{Schedule: 1000, Wakeup: 500, Migrate: 200, ContextSwitch: 300, IPI: 100}
	m, _ := newRRMachine(t, 2, ov)
	m.AddVCPU("a", spinner(), 256, false)
	m.AddVCPU("b", blockerProgram(100_000, 50_000), 256, false)
	m.Start()
	const horizon = 20_000_000
	m.Run(horizon)
	for _, cpu := range m.CPUs {
		total := cpu.BusyTime + cpu.IdleTime + cpu.OverheadTime
		if total != horizon {
			t.Errorf("cpu %d: busy+idle+overhead = %d, want %d", cpu.ID, total, horizon)
		}
	}
}

// blockerProgram computes c then blocks for b, forever.
func blockerProgram(c, b int64) Program {
	phase := make(map[*VCPU]*int)
	return ProgramFunc(func(m *Machine, v *VCPU, now int64) Action {
		st := phase[v]
		if st == nil {
			st = new(int)
			phase[v] = st
		}
		*st++
		if *st%2 == 1 {
			return Compute(c)
		}
		return Block(b)
	})
}

func TestBlockWakeCycle(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	v := m.AddVCPU("io", blockerProgram(100_000, 100_000), 256, false)
	m.Start()
	m.Run(10_000_000)
	// Duty cycle 50%: ~5 ms of runtime.
	if v.RunTime < 4_900_000 || v.RunTime > 5_100_000 {
		t.Errorf("RunTime = %d, want ~5ms", v.RunTime)
	}
	if v.Wakeups < 40 {
		t.Errorf("Wakeups = %d, want ~50", v.Wakeups)
	}
}

func TestIdleMachineAccumulatesIdle(t *testing.T) {
	m, _ := newRRMachine(t, 2, NoOverheads())
	m.Start()
	m.Run(5_000_000)
	for _, cpu := range m.CPUs {
		if cpu.IdleTime != 5_000_000 {
			t.Errorf("cpu %d idle = %d", cpu.ID, cpu.IdleTime)
		}
	}
}

func TestDoneProgramStops(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	calls := 0
	v := m.AddVCPU("oneshot", ProgramFunc(func(m *Machine, v *VCPU, now int64) Action {
		calls++
		if calls == 1 {
			return Compute(1_000)
		}
		return Done()
	}), 256, false)
	m.Start()
	m.Run(1_000_000)
	if v.State != Dead {
		t.Errorf("state = %v, want dead", v.State)
	}
	if v.RunTime != 1_000 {
		t.Errorf("RunTime = %d", v.RunTime)
	}
	if m.CPUs[0].IdleTime < 990_000 {
		t.Errorf("core should be idle after program death: idle=%d", m.CPUs[0].IdleTime)
	}
}

func TestWakeOnBlockedOnly(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	v := m.AddVCPU("spin", spinner(), 256, false)
	m.Start()
	m.Run(1_000)
	before := v.Wakeups
	m.Wake(v) // runnable, not blocked: must be a no-op
	if v.Wakeups != before {
		t.Error("wake of non-blocked vCPU counted")
	}
}

func TestExternalWake(t *testing.T) {
	m, _ := newRRMachine(t, 1, NoOverheads())
	served := []int64{}
	v := m.AddVCPU("server", ProgramFunc(func(m *Machine, v *VCPU, now int64) Action {
		if len(served) > 0 && served[len(served)-1] == now {
			return BlockIndefinitely()
		}
		if now > 0 {
			served = append(served, now)
		}
		return BlockIndefinitely()
	}), 256, false)
	m.Start()
	m.Run(1_000) // server blocks immediately
	if v.State != Blocked {
		t.Fatalf("state = %v, want blocked", v.State)
	}
	m.Eng.At(5_000, func(int64) { m.Wake(v) })
	m.Run(10_000)
	if len(served) == 0 || served[0] != 5_000 {
		t.Errorf("server served at %v, want [5000]", served)
	}
}

func TestSchedulerOpStats(t *testing.T) {
	ov := OverheadModel{Schedule: 100, Wakeup: 50, Migrate: 20, ContextSwitch: 10, IPI: 5}
	m, _ := newRRMachine(t, 1, ov)
	m.AddVCPU("a", blockerProgram(50_000, 50_000), 256, false)
	m.Start()
	m.Run(10_000_000)
	if m.Stats.ScheduleOps == 0 || m.Stats.WakeupOps == 0 {
		t.Errorf("stats not collected: %+v", m.Stats)
	}
	if m.Stats.ScheduleTime != m.Stats.ScheduleOps*100 {
		t.Errorf("schedule time %d != ops %d * 100", m.Stats.ScheduleTime, m.Stats.ScheduleOps)
	}
	if m.OverheadTime() == 0 {
		t.Error("no overhead accumulated")
	}
}

func TestOverheadReducesThroughput(t *testing.T) {
	run := func(ov OverheadModel) int64 {
		eng := sim.New(1)
		s := &rrScheduler{slice: 100_000}
		m := New(eng, 1, s, ov)
		// Two I/O-ish workloads triggering constant rescheduling.
		m.AddVCPU("a", blockerProgram(20_000, 10_000), 256, false)
		m.AddVCPU("b", blockerProgram(20_000, 10_000), 256, false)
		m.Start()
		m.Run(50_000_000)
		return m.GuestTime()
	}
	cheap := run(OverheadModel{Schedule: 100, ContextSwitch: 100})
	costly := run(OverheadModel{Schedule: 8_000, ContextSwitch: 1_500})
	if costly >= cheap {
		t.Errorf("high-overhead scheduler delivered more guest time: %d >= %d", costly, cheap)
	}
}

func TestOverheadsLockStructure(t *testing.T) {
	// RTDS: one global lock covering every core.
	rt := Overheads("rtds", 48)
	if rt.LockDomainCores != 48 {
		t.Errorf("rtds lock domain = %d, want global (48)", rt.LockDomainCores)
	}
	// Tableau: lock-free core-local structures.
	tb := Overheads("tableau", 16)
	if tb.LockDomainCores != 0 {
		t.Errorf("tableau lock domain = %d, want lock-free", tb.LockDomainCores)
	}
	// Credit: per-CPU runqueues.
	if cr := Overheads("credit", 16); cr.LockDomainCores != 1 {
		t.Errorf("credit lock domain = %d, want per-cpu", cr.LockDomainCores)
	}
	// Credit2: per-socket runqueues.
	if c2 := Overheads("credit2", 16); c2.LockDomainCores != 8 {
		t.Errorf("credit2 lock domain = %d, want per-socket", c2.LockDomainCores)
	}
	unknown := Overheads("nope", 16)
	if unknown.Schedule != 0 || unknown.ContextSwitch == 0 {
		t.Errorf("unknown scheduler model = %+v", unknown)
	}
}

func TestPaperOverheads(t *testing.T) {
	ops, ok := PaperOverheads("rtds", 48)
	if !ok || ops[2] != 168_620 {
		t.Errorf("PaperOverheads(rtds, 48) = %v, %v", ops, ok)
	}
	if _, ok := PaperOverheads("rtds", 32); ok {
		t.Error("unmeasured core count should report !ok")
	}
	if _, ok := PaperOverheads("nope", 16); ok {
		t.Error("unknown scheduler should report !ok")
	}
}

func TestRatioTableauVsOthers(t *testing.T) {
	// The paper's headline overhead ratios (Sec. 7.2) hold between the
	// uncontended base costs too: Tableau's decision path is far
	// cheaper than Credit's.
	tb := Overheads("tableau", 16)
	cr := Overheads("credit", 16)
	if r := float64(cr.Schedule) / float64(tb.Schedule); r < 4.5 || r > 6.5 {
		t.Errorf("credit/tableau schedule ratio = %.2f, want ~5.5", r)
	}
}

func TestLockContentionSerializesOps(t *testing.T) {
	// Two CPUs issuing ops at the same instant under a global lock: the
	// second op pays the first op's hold time as waiting.
	eng := sim.New(1)
	s := &rrScheduler{slice: 1_000_000}
	m := New(eng, 2, s, OverheadModel{Schedule: 1000, LockDomainCores: 2})
	c0 := m.lockedCost(m.CPUs[0], 1000, 100)
	c1 := m.lockedCost(m.CPUs[1], 1000, 100)
	if c0 != 1000 {
		t.Errorf("first op cost = %d, want base 1000", c0)
	}
	if c1 != 2000 {
		t.Errorf("contended op cost = %d, want 2000 (wait + hold)", c1)
	}
	// After the lock drains, costs return to base.
	if c := m.lockedCost(m.CPUs[0], 1000, 10_000); c != 1000 {
		t.Errorf("uncontended op cost = %d", c)
	}
}

func TestLockFreeSchedulerNeverQueues(t *testing.T) {
	eng := sim.New(1)
	s := &rrScheduler{slice: 1_000_000}
	m := New(eng, 2, s, OverheadModel{Schedule: 1000, LockDomainCores: 0})
	if c := m.lockedCost(m.CPUs[0], 1000, 0); c != 1000 {
		t.Errorf("cost = %d", c)
	}
	if c := m.lockedCost(m.CPUs[1], 1000, 0); c != 1000 {
		t.Errorf("lock-free second op cost = %d, want base", c)
	}
}

// TestStopCancelsCoreEvents verifies teardown: Stop flushes accounting,
// cancels the per-core events through their handles, and reports the
// live events that remain (program-scheduled wakes). Advancing the
// engine afterwards must not re-invoke the scheduler.
func TestStopCancelsCoreEvents(t *testing.T) {
	m, _ := newRRMachine(t, 2, NoOverheads())
	v := m.AddVCPU("spin", spinner(), 256, false)
	// A blocked vCPU with a timed wake far in the future: its wake event
	// belongs to the program, not the cores, and must survive Stop.
	m.AddVCPU("sleeper", ProgramFunc(func(m *Machine, vc *VCPU, now int64) Action {
		return Block(1_000_000_000)
	}), 256, false)
	m.Start()
	m.Run(5_000_000)
	ranBefore := v.RunTime
	if ranBefore == 0 {
		t.Fatal("spinner did not run")
	}
	remaining := m.Stop()
	if remaining != 1 {
		t.Errorf("Stop() = %d pending events, want 1 (the sleeper's wake)", remaining)
	}
	if m.Eng.Len() < remaining {
		t.Errorf("Eng.Len() = %d below live count %d", m.Eng.Len(), remaining)
	}
	// The cores are quiesced: advancing the clock runs no guest work.
	m.Eng.RunUntil(2_000_000_000)
	if v.RunTime != ranBefore {
		t.Errorf("vCPU ran %d ns after Stop", v.RunTime-ranBefore)
	}
	if m.Eng.Pending() != 0 {
		t.Errorf("Pending() = %d after drain", m.Eng.Pending())
	}
}
