package vmm_test

import (
	"fmt"

	"tableau/internal/sim"
	"tableau/internal/vmm"
)

// fifo is a minimal round-robin scheduler for the example: rotates
// through runnable vCPUs with 1 ms slices.
type fifo struct {
	m    *vmm.Machine
	next int
}

func (f *fifo) Name() string          { return "fifo" }
func (f *fifo) Attach(m *vmm.Machine) { f.m = m }
func (f *fifo) PickNext(cpu *vmm.PCPU, now int64) vmm.Decision {
	n := len(f.m.VCPUs)
	for k := 0; k < n; k++ {
		v := f.m.VCPUs[(f.next+k)%n]
		if v.State == vmm.Runnable && (v.CurrentCPU == -1 || v.CurrentCPU == cpu.ID) {
			f.next = (v.ID + 1) % n
			return vmm.Decision{VCPU: v, Until: now + 1_000_000}
		}
	}
	return vmm.Decision{Until: vmm.NoTimer}
}
func (f *fifo) OnWake(v *vmm.VCPU, now int64) {
	for _, cpu := range f.m.CPUs {
		if cpu.Current == nil {
			f.m.Kick(cpu.ID)
			return
		}
	}
}
func (f *fifo) OnBlock(v *vmm.VCPU, now int64) {}

// Example runs a two-VM machine under a trivial scheduler: one vCPU
// computes continuously, the other alternates I/O. Overheads are
// charged per scheduler operation, so guest time plus idle time plus
// overhead exactly partitions the core's history.
func Example() {
	eng := sim.New(1)
	m := vmm.New(eng, 1, &fifo{}, vmm.OverheadModel{Schedule: 1000, ContextSwitch: 500})
	m.AddVCPU("cpu-bound", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	}), 256, false)
	phase := 0
	m.AddVCPU("io-bound", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		phase++
		if phase%2 == 1 {
			return vmm.Compute(200_000)
		}
		return vmm.Block(800_000)
	}), 256, false)
	m.Start()
	m.Run(100_000_000)

	cpu := m.CPUs[0]
	fmt.Println("partition ok:", cpu.BusyTime+cpu.IdleTime+cpu.OverheadTime == 100_000_000)
	fmt.Println("cpu-bound share > 75%:", m.VCPUs[0].RunTime > 75_000_000)
	fmt.Println("io-bound woke up:", m.VCPUs[1].Wakeups > 50)
	fmt.Println("scheduler invoked:", m.Stats.ScheduleOps >= 100)
	// Output:
	// partition ok: true
	// cpu-bound share > 75%: true
	// io-bound woke up: true
	// scheduler invoked: true
}
