package periodic_test

import (
	"fmt"

	"tableau/internal/periodic"
)

// ExampleSimulateEDF produces the repeating schedule the planner turns
// into a dispatch table: EDF over one hyperperiod. At t=5 task a's
// second job ties with b's deadline; the deterministic tie-break favors
// the earlier release, so b runs to completion first.
func ExampleSimulateEDF() {
	ts := periodic.TaskSet{
		{Name: "a", Group: 0, WCET: 2, Deadline: 5, Period: 5},
		{Name: "b", Group: 1, WCET: 4, Deadline: 10, Period: 10},
	}
	res, err := periodic.SimulateEDF(ts, 10)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, s := range res.Slots {
		fmt.Printf("[%d,%d) %s\n", s.Start, s.End, ts[s.Task].Name)
	}
	fmt.Println("preemptions:", res.Preemptions)
	// Output:
	// [0,2) a
	// [2,6) b
	// [6,8) a
	// preemptions: 0
}

// ExampleTaskSet_EDFSchedulable shows the exact QPA test on a
// constrained-deadline set where the utilization bound alone would
// mislead.
func ExampleTaskSet_EDFSchedulable() {
	tight := periodic.TaskSet{
		{Name: "x", WCET: 4, Deadline: 4, Period: 10},
		{Name: "y", WCET: 4, Deadline: 4, Period: 10},
	}
	fmt.Println("U =", tight.TotalUtil(), "schedulable:", tight.EDFSchedulable())
	relaxed := periodic.TaskSet{
		{Name: "x", WCET: 4, Deadline: 8, Period: 10},
		{Name: "y", WCET: 4, Deadline: 8, Period: 10},
	}
	fmt.Println("U =", relaxed.TotalUtil(), "schedulable:", relaxed.EDFSchedulable())
	// Output:
	// U = 4/5 schedulable: false
	// U = 4/5 schedulable: true
}

// ExampleTaskSet_MaxFeasibleCEqualsD: the C=D splitting primitive —
// the largest head budget a loaded core can still take.
func ExampleTaskSet_MaxFeasibleCEqualsD() {
	core := periodic.TaskSet{{Name: "resident", WCET: 60, Deadline: 100, Period: 100}}
	c, ok := core.MaxFeasibleCEqualsD(100, 100)
	fmt.Println(ok, c)
	// Output: true 40
}
