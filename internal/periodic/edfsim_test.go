package periodic

import (
	"math/rand"
	"testing"
)

func TestSimulateEDFSingleTask(t *testing.T) {
	ts := TaskSet{{Name: "a", WCET: 3, Deadline: 10, Period: 10}}
	res, err := SimulateEDF(ts, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := []Slot{{0, 3, 0}, {10, 13, 0}}
	if len(res.Slots) != len(want) {
		t.Fatalf("slots = %v, want %v", res.Slots, want)
	}
	for i := range want {
		if res.Slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", res.Slots, want)
		}
	}
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0", res.Preemptions)
	}
}

func TestSimulateEDFTwoTasks(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 2, Deadline: 4, Period: 8},
		{Name: "b", WCET: 4, Deadline: 8, Period: 8},
	}
	res, err := SimulateEDF(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	// EDF runs a first (earlier deadline), then b.
	want := []Slot{{0, 2, 0}, {2, 6, 1}}
	if len(res.Slots) != len(want) {
		t.Fatalf("slots = %v, want %v", res.Slots, want)
	}
	for i := range want {
		if res.Slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", res.Slots, want)
		}
	}
}

func TestSimulateEDFPreemption(t *testing.T) {
	// Long task starts, short-deadline task released mid-way preempts it.
	ts := TaskSet{
		{Name: "long", WCET: 6, Deadline: 20, Period: 20},
		{Name: "short", Offset: 2, WCET: 2, Deadline: 3, Period: 20},
	}
	res, err := SimulateEDF(ts, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := []Slot{{0, 2, 0}, {2, 4, 1}, {4, 8, 0}}
	if len(res.Slots) != len(want) {
		t.Fatalf("slots = %v, want %v", res.Slots, want)
	}
	for i := range want {
		if res.Slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", res.Slots, want)
		}
	}
	if res.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", res.Preemptions)
	}
	if res.ContextSwitches != 3 {
		t.Errorf("context switches = %d, want 3", res.ContextSwitches)
	}
}

func TestSimulateEDFDeadlineMiss(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 4, Deadline: 4, Period: 10},
		{Name: "b", WCET: 4, Deadline: 4, Period: 10},
	}
	_, err := SimulateEDF(ts, 10)
	if err == nil {
		t.Fatal("expected deadline miss")
	}
	if _, ok := err.(*DeadlineMissError); !ok {
		t.Fatalf("error type = %T, want *DeadlineMissError", err)
	}
}

func TestSimulateEDFValidatesInput(t *testing.T) {
	if _, err := SimulateEDF(TaskSet{{Name: "bad", WCET: 0, Deadline: 1, Period: 1}}, 10); err == nil {
		t.Error("invalid task must be rejected")
	}
	if _, err := SimulateEDF(TaskSet{{Name: "a", WCET: 1, Deadline: 2, Period: 2}}, 0); err == nil {
		t.Error("non-positive horizon must be rejected")
	}
}

func TestSimulateEDFIdleGaps(t *testing.T) {
	ts := TaskSet{{Name: "a", WCET: 1, Deadline: 10, Period: 10}}
	res, err := SimulateEDF(ts, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 3 {
		t.Fatalf("slots = %v, want 3 slots", res.Slots)
	}
	for i, s := range res.Slots {
		if s.Start != int64(i)*10 || s.End != int64(i)*10+1 {
			t.Errorf("slot %d = %v", i, s)
		}
	}
}

// Property: over one hyperperiod of a schedulable synchronous set, every
// task receives exactly (H/T)*C service, slots never overlap, and slot
// boundaries are monotone.
func TestSimulateEDFInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for i := 0; i < 300; i++ {
		ts := randomTaskSet(rng, 1+rng.Intn(5), 120)
		if !ts.EDFSchedulable() {
			continue
		}
		h, err := ts.Hyperperiod()
		if err != nil || h > 2_000_000 {
			continue
		}
		res, err := SimulateEDF(ts, h)
		if err != nil {
			t.Fatalf("schedulable set %v missed a deadline: %v", ts, err)
		}
		checked++
		var prevEnd int64 = -1
		service := make([]int64, len(ts))
		for _, s := range res.Slots {
			if s.Start < prevEnd {
				t.Fatalf("overlapping slots in %v", res.Slots)
			}
			if s.End <= s.Start {
				t.Fatalf("empty slot %v", s)
			}
			prevEnd = s.End
			service[s.Task] += s.Len()
		}
		for j, tk := range ts {
			want := (h / tk.Period) * tk.WCET
			if service[j] != want {
				t.Fatalf("task %s service = %d, want %d (set %v)", tk.Name, service[j], want, ts)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d schedulable sets checked", checked)
	}
}

func TestServicePerWindow(t *testing.T) {
	ts := TaskSet{{Name: "a", WCET: 3, Deadline: 10, Period: 10}}
	good := []Slot{{0, 3, 0}, {10, 13, 0}}
	if _, _, _, ok := ServicePerWindow(ts, good, 20); !ok {
		t.Error("good table flagged as violating")
	}
	short := []Slot{{0, 3, 0}, {10, 12, 0}}
	task, win, got, ok := ServicePerWindow(ts, short, 20)
	if ok {
		t.Fatal("short table should violate")
	}
	if task != 0 || win != 10 || got != 2 {
		t.Errorf("violation = (task %d, window %d, got %d)", task, win, got)
	}
	// Table length not a multiple of the period is a violation.
	if _, _, _, ok := ServicePerWindow(ts, good, 15); ok {
		t.Error("non-multiple table length should be rejected")
	}
}

func TestMaxBlackout(t *testing.T) {
	// Task runs [0,3) and [10,13) in a 20-long table. Gaps: [3,10) = 7
	// within the cycle and [13, 20+0) = 7 across the wrap.
	slots := []Slot{{0, 3, 0}, {10, 13, 0}}
	if got := MaxBlackout(slots, 0, 20); got != 7 {
		t.Errorf("MaxBlackout = %d, want 7", got)
	}
	// Worst case across the wrap: run early in the cycle only.
	slots = []Slot{{0, 3, 0}}
	if got := MaxBlackout(slots, 0, 20); got != 17 {
		t.Errorf("MaxBlackout = %d, want 17", got)
	}
	// Task that never runs.
	if got := MaxBlackout(slots, 5, 20); got != 20 {
		t.Errorf("MaxBlackout(absent task) = %d, want 20", got)
	}
}

// Property: for schedulable implicit-deadline sets, the blackout of every
// task in the simulated table is bounded by 2*(T-C), the bound from the
// paper (Sec. 5) that drives period selection.
func TestBlackoutBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	checked := 0
	for i := 0; i < 300; i++ {
		// Implicit deadlines only.
		ts := randomTaskSet(rng, 1+rng.Intn(4), 120)
		for j := range ts {
			ts[j].Deadline = ts[j].Period
		}
		if !ts.EDFSchedulable() {
			continue
		}
		h, err := ts.Hyperperiod()
		if err != nil || h > 2_000_000 {
			continue
		}
		res, err := SimulateEDF(ts, h)
		if err != nil {
			t.Fatal(err)
		}
		checked++
		for j, tk := range ts {
			bound := 2 * (tk.Period - tk.WCET)
			if bound == 0 {
				bound = 0 // C == T: task always runs
			}
			if got := MaxBlackout(res.Slots, j, h); got > bound {
				t.Fatalf("task %v blackout %d > bound %d (set %v)", tk, got, bound, ts)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d sets checked", checked)
	}
}
