package periodic

import (
	"math/big"
	"sort"
)

// DBF returns the demand-bound function of the set at time t: the maximum
// cumulative execution demand of jobs that have both release time and
// deadline inside any interval of length t, assuming a synchronous
// release (all offsets zero). For a set of constrained-deadline periodic
// tasks this is
//
//	dbf(t) = sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i.
//
// The synchronous case maximizes demand, so DBF-based tests are safe for
// task sets with arbitrary offsets.
func (ts TaskSet) DBF(t int64) int64 {
	var sum int64
	for _, tk := range ts {
		if t < tk.Deadline {
			continue
		}
		n := (t-tk.Deadline)/tk.Period + 1
		sum += n * tk.WCET
	}
	return sum
}

// busyPeriod returns the length of the synchronous busy period: the
// smallest fixed point of w = sum_i ceil(w/T_i)*C_i. It requires total
// utilization <= 1; the fixed point then exists and is at most the
// hyperperiod. The bound argument caps the iteration (e.g. the
// hyperperiod); if the fixed point exceeds bound, bound is returned.
func (ts TaskSet) busyPeriod(bound int64) int64 {
	var w int64
	for _, tk := range ts {
		w += tk.WCET
	}
	for {
		var next int64
		for _, tk := range ts {
			n := (w + tk.Period - 1) / tk.Period
			next += n * tk.WCET
		}
		if next == w {
			return w
		}
		if next >= bound {
			return bound
		}
		w = next
	}
}

// absDeadlinesBelow returns the largest absolute deadline k*T_i + D_i
// (synchronous release) that is strictly less than limit, or -1 if there
// is none.
func (ts TaskSet) absDeadlinesBelow(limit int64) int64 {
	best := int64(-1)
	for _, tk := range ts {
		if tk.Deadline >= limit {
			continue
		}
		// Largest k with k*T + D < limit.
		k := (limit - tk.Deadline - 1) / tk.Period
		d := k*tk.Period + tk.Deadline
		if d > best {
			best = d
		}
	}
	return best
}

// EDFSchedulable reports whether the task set is schedulable by preemptive
// EDF on a single processor. It is exact for synchronous constrained-
// deadline periodic tasks and safe (sufficient) when tasks have offsets,
// since the synchronous release pattern maximizes demand.
//
// The test is QPA (Quick convergence Processor-demand Analysis, Zhang &
// Burns 2009): starting just below the end of the synchronous busy period
// it walks the demand-bound function backwards, converging far faster
// than enumerating all deadlines.
func (ts TaskSet) EDFSchedulable() bool {
	if len(ts) == 0 {
		return true
	}
	if !ts.UtilAtMost(1) {
		return false
	}
	// Implicit-deadline fast path: EDF is optimal, U <= 1 suffices.
	implicit := true
	for _, tk := range ts {
		if !tk.Implicit() {
			implicit = false
			break
		}
	}
	if implicit {
		return true
	}
	h, err := ts.Hyperperiod()
	if err != nil {
		// Periods too wild for exact analysis; fall back to a safe
		// density bound: sum C/D <= 1 implies schedulability.
		sum := new(big.Rat)
		for _, tk := range ts {
			sum.Add(sum, tk.Density())
		}
		return sum.Cmp(big.NewRat(1, 1)) <= 0
	}
	la := ts.busyPeriod(h)
	dmin := ts.MinDeadline()
	t := ts.absDeadlinesBelow(la)
	if t < 0 {
		return true
	}
	for {
		hdem := ts.DBF(t)
		if hdem > t {
			return false
		}
		if hdem <= dmin {
			return true
		}
		if hdem < t {
			t = hdem
		} else {
			t = ts.absDeadlinesBelow(t)
			if t < dmin {
				return true
			}
		}
	}
}

// MaxFeasibleCEqualsD returns the largest execution budget c such that
// adding a "C=D" task (WCET=c, Deadline=c, Period=period) to the set
// keeps it EDF-schedulable on one processor, along with whether any
// positive budget fits. This is the core primitive of the C=D
// semi-partitioning scheme (Burns et al. 2012): the head portion of a
// split task is given a deadline equal to its budget so it executes
// immediately at the start of every period.
//
// The value is found by binary search over c, using the exact QPA test at
// each probe; granularity is 1 ns.
func (ts TaskSet) MaxFeasibleCEqualsD(period int64, maxC int64) (int64, bool) {
	if maxC > period {
		maxC = period
	}
	if maxC <= 0 {
		return 0, false
	}
	feasible := func(c int64) bool {
		aug := append(ts.Clone(), Task{
			Name:     "_cd_probe",
			WCET:     c,
			Deadline: c,
			Period:   period,
		})
		return aug.EDFSchedulable()
	}
	if !feasible(1) {
		return 0, false
	}
	lo, hi := int64(1), maxC // lo is always feasible
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// MaxFeasibleConstrained returns the largest WCET c such that adding a
// task with the given deadline and period stays EDF-schedulable, and
// whether any positive budget fits. Used when placing the tail portion of
// a split task.
func (ts TaskSet) MaxFeasibleConstrained(deadline, period, maxC int64) (int64, bool) {
	if maxC > deadline {
		maxC = deadline
	}
	if maxC <= 0 {
		return 0, false
	}
	feasible := func(c int64) bool {
		aug := append(ts.Clone(), Task{
			Name:     "_tail_probe",
			WCET:     c,
			Deadline: deadline,
			Period:   period,
		})
		return aug.EDFSchedulable()
	}
	if !feasible(1) {
		return 0, false
	}
	lo, hi := int64(1), maxC
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// Deadlines returns all distinct absolute deadlines (and period
// boundaries) of the synchronous set in [0, horizon], sorted ascending.
// Used by the DP-WRAP cluster scheduler to partition time into slices.
func (ts TaskSet) Deadlines(horizon int64) []int64 {
	seen := map[int64]struct{}{0: {}, horizon: {}}
	for _, tk := range ts {
		for r := tk.Offset; r <= horizon; r += tk.Period {
			seen[r] = struct{}{}
			if d := r + tk.Deadline; d <= horizon {
				seen[d] = struct{}{}
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
