package periodic

import (
	"container/heap"
	"fmt"
)

// A Slot is a half-open interval [Start, End) during which a single task
// executes on one processor. Task is an index into the simulated task
// set; the special value IdleTask marks idle time.
type Slot struct {
	Start int64
	End   int64
	Task  int
}

// IdleTask marks a slot during which the processor is idle.
const IdleTask = -1

// Len returns the slot length.
func (s Slot) Len() int64 { return s.End - s.Start }

// EDFResult is the outcome of a uniprocessor EDF simulation.
type EDFResult struct {
	// Slots lists the busy intervals in increasing time order. Adjacent
	// slots of the same task are merged; idle time is omitted.
	Slots []Slot
	// Preemptions counts how many times a partially-executed job was
	// descheduled in favor of another job.
	Preemptions int
	// ContextSwitches counts task-to-different-task transitions.
	ContextSwitches int
}

// edfJob is one pending job inside the simulator.
type edfJob struct {
	task        int
	release     int64
	absDeadline int64
	remaining   int64
	started     bool
}

// edfHeap orders jobs by (absolute deadline, release, task index) so the
// simulation is fully deterministic.
type edfHeap []*edfJob

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].absDeadline != h[j].absDeadline {
		return h[i].absDeadline < h[j].absDeadline
	}
	if h[i].release != h[j].release {
		return h[i].release < h[j].release
	}
	return h[i].task < h[j].task
}
func (h edfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x interface{}) { *h = append(*h, x.(*edfJob)) }
func (h *edfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// DeadlineMissError reports the first deadline miss encountered by an EDF
// simulation.
type DeadlineMissError struct {
	Task        int
	Name        string
	AbsDeadline int64
	FinishBound int64 // earliest the job could have finished
}

func (e *DeadlineMissError) Error() string {
	return fmt.Sprintf("periodic: EDF deadline miss: task %d (%s) deadline %d, cannot finish before %d",
		e.Task, e.Name, e.AbsDeadline, e.FinishBound)
}

// SimulateEDF runs a preemptive earliest-deadline-first schedule of the
// task set on one processor over [0, horizon) and returns the resulting
// slots. Jobs release at Offset + k*Period; ties are broken
// deterministically. If any job misses its deadline a DeadlineMissError
// is returned. Jobs still incomplete at the horizon are not an error if
// their deadlines lie beyond the horizon; the caller is expected to pass
// a horizon equal to the hyperperiod so the schedule can repeat
// cyclically.
func SimulateEDF(ts TaskSet, horizon int64) (*EDFResult, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("periodic: non-positive horizon %d", horizon)
	}

	res := &EDFResult{}
	ready := &edfHeap{}
	heap.Init(ready)

	// nextRel[i] is the next release time of task i (or >= horizon when
	// done releasing within the window).
	nextRel := make([]int64, len(ts))
	for i, tk := range ts {
		nextRel[i] = tk.Offset
	}
	earliestRelease := func() int64 {
		e := horizon
		for _, r := range nextRel {
			if r < e {
				e = r
			}
		}
		return e
	}
	releaseUpTo := func(t int64) {
		for i := range ts {
			for nextRel[i] <= t && nextRel[i] < horizon {
				heap.Push(ready, &edfJob{
					task:        i,
					release:     nextRel[i],
					absDeadline: nextRel[i] + ts[i].Deadline,
					remaining:   ts[i].WCET,
				})
				nextRel[i] += ts[i].Period
			}
		}
	}

	var t int64
	lastTask := IdleTask
	for t < horizon {
		releaseUpTo(t)
		if ready.Len() == 0 {
			nxt := earliestRelease()
			if nxt >= horizon {
				break
			}
			t = nxt
			lastTask = IdleTask
			continue
		}
		job := (*ready)[0]
		// Feasibility check: the job must be able to finish by its
		// deadline even if it runs uninterrupted from now on. Under EDF
		// this detects every miss at the earliest possible moment.
		if t+job.remaining > job.absDeadline && job.absDeadline <= horizon {
			return nil, &DeadlineMissError{
				Task:        job.task,
				Name:        ts[job.task].Name,
				AbsDeadline: job.absDeadline,
				FinishBound: t + job.remaining,
			}
		}
		runUntil := t + job.remaining
		if nxt := earliestRelease(); nxt < runUntil {
			runUntil = nxt
		}
		if runUntil > horizon {
			runUntil = horizon
		}
		if runUntil > t {
			if lastTask != job.task {
				res.ContextSwitches++
			}
			if n := len(res.Slots); n > 0 && res.Slots[n-1].Task == job.task && res.Slots[n-1].End == t {
				res.Slots[n-1].End = runUntil
			} else {
				res.Slots = append(res.Slots, Slot{Start: t, End: runUntil, Task: job.task})
			}
			job.remaining -= runUntil - t
			job.started = true
			lastTask = job.task
			t = runUntil
		}
		if job.remaining == 0 {
			heap.Pop(ready)
		} else {
			// The job was cut short by a release; if the newly released
			// job has an earlier deadline the current job is preempted.
			releaseUpTo(t)
			if (*ready)[0] != job && job.started {
				res.Preemptions++
			}
		}
	}
	return res, nil
}

// ServicePerWindow verifies that, in the cyclic extension of the given
// slots (repeating with the given table length), task i receives at least
// ts[i].WCET units of service in every window [k*T_i, (k+1)*T_i) for k in
// [0, tableLen/T_i). It returns the first violated window, or ok=true.
//
// This is the paper's utilization guarantee stated directly against a
// concrete table.
func ServicePerWindow(ts TaskSet, slots []Slot, tableLen int64) (task int, windowStart int64, got int64, ok bool) {
	for i, tk := range ts {
		if tableLen%tk.Period != 0 {
			// The window pattern would not repeat; treat as violation.
			return i, 0, 0, false
		}
		for w := int64(0); w < tableLen; w += tk.Period {
			var svc int64
			for _, s := range slots {
				if s.Task != i {
					continue
				}
				lo, hi := s.Start, s.End
				if lo < w {
					lo = w
				}
				if hi > w+tk.Period {
					hi = w + tk.Period
				}
				if hi > lo {
					svc += hi - lo
				}
			}
			if svc < tk.WCET {
				return i, w, svc, false
			}
		}
	}
	return 0, 0, 0, true
}

// MaxBlackout returns the longest contiguous interval, in the cyclic
// extension of the slots over tableLen, during which task i receives no
// service. It accounts for the wrap-around gap between the task's last
// slot in one cycle and its first slot in the next. If the task never
// runs, tableLen is returned (one full cycle with no service; callers
// should treat repeated starvation as unbounded).
func MaxBlackout(slots []Slot, task int, tableLen int64) int64 {
	var mine []Slot
	for _, s := range slots {
		if s.Task == task {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return tableLen
	}
	var worst int64
	prevEnd := mine[len(mine)-1].End - tableLen // wrap: last slot of previous cycle
	for _, s := range mine {
		if gap := s.Start - prevEnd; gap > worst {
			worst = gap
		}
		prevEnd = s.End
	}
	return worst
}
