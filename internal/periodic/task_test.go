package periodic

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid implicit", Task{Name: "a", WCET: 10, Deadline: 100, Period: 100}, true},
		{"valid constrained", Task{Name: "a", WCET: 10, Deadline: 50, Period: 100}, true},
		{"valid offset", Task{Name: "a", Offset: 7, WCET: 10, Deadline: 50, Period: 100}, true},
		{"zero wcet", Task{Name: "a", WCET: 0, Deadline: 50, Period: 100}, false},
		{"negative wcet", Task{Name: "a", WCET: -1, Deadline: 50, Period: 100}, false},
		{"zero period", Task{Name: "a", WCET: 10, Deadline: 50, Period: 0}, false},
		{"deadline below wcet", Task{Name: "a", WCET: 60, Deadline: 50, Period: 100}, false},
		{"deadline above period", Task{Name: "a", WCET: 10, Deadline: 150, Period: 100}, false},
		{"negative offset", Task{Name: "a", Offset: -1, WCET: 10, Deadline: 50, Period: 100}, false},
		{"c equals d", Task{Name: "a", WCET: 50, Deadline: 50, Period: 100}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.task.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestTaskUtil(t *testing.T) {
	tk := Task{Name: "a", WCET: 25, Deadline: 100, Period: 100}
	if got, want := tk.Util(), big.NewRat(1, 4); got.Cmp(want) != 0 {
		t.Errorf("Util() = %v, want %v", got, want)
	}
	if got := tk.UtilFloat(); got != 0.25 {
		t.Errorf("UtilFloat() = %v, want 0.25", got)
	}
	if got, want := tk.Density(), big.NewRat(1, 4); got.Cmp(want) != 0 {
		t.Errorf("Density() = %v, want %v", got, want)
	}
	tk.Deadline = 50
	if got, want := tk.Density(), big.NewRat(1, 2); got.Cmp(want) != 0 {
		t.Errorf("Density() = %v, want %v", got, want)
	}
}

func TestTaskImplicit(t *testing.T) {
	if !(Task{WCET: 1, Deadline: 10, Period: 10}).Implicit() {
		t.Error("D==T should be implicit")
	}
	if (Task{WCET: 1, Deadline: 5, Period: 10}).Implicit() {
		t.Error("D<T should not be implicit")
	}
}

func TestTaskSetTotalUtil(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 1, Deadline: 4, Period: 4},
		{Name: "b", WCET: 1, Deadline: 2, Period: 2},
		{Name: "c", WCET: 1, Deadline: 4, Period: 4},
	}
	if got := ts.TotalUtil(); got.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("TotalUtil() = %v, want 1", got)
	}
	if !ts.UtilAtMost(1) {
		t.Error("UtilAtMost(1) = false, want true")
	}
	ts = append(ts, Task{Name: "d", WCET: 1, Deadline: 1000, Period: 1000})
	if ts.UtilAtMost(1) {
		t.Error("UtilAtMost(1) = true for over-utilized set")
	}
	if !ts.UtilAtMost(2) {
		t.Error("UtilAtMost(2) = false, want true")
	}
}

func TestTaskSetMinMaxDeadline(t *testing.T) {
	var empty TaskSet
	if empty.MaxDeadline() != 0 || empty.MinDeadline() != 0 {
		t.Error("empty set deadlines should be 0")
	}
	ts := TaskSet{
		{Name: "a", WCET: 1, Deadline: 40, Period: 40},
		{Name: "b", WCET: 1, Deadline: 7, Period: 10},
		{Name: "c", WCET: 1, Deadline: 25, Period: 30},
	}
	if got := ts.MaxDeadline(); got != 40 {
		t.Errorf("MaxDeadline() = %d, want 40", got)
	}
	if got := ts.MinDeadline(); got != 7 {
		t.Errorf("MinDeadline() = %d, want 7", got)
	}
}

func TestSortByUtilDesc(t *testing.T) {
	ts := TaskSet{
		{Name: "low", WCET: 1, Deadline: 10, Period: 10},     // 0.1
		{Name: "high", WCET: 9, Deadline: 10, Period: 10},    // 0.9
		{Name: "mid", WCET: 1, Deadline: 2, Period: 2},       // 0.5
		{Name: "mid2", WCET: 50, Deadline: 100, Period: 100}, // 0.5
	}
	ts.SortByUtilDesc()
	want := []string{"high", "mid", "mid2", "low"}
	for i, n := range want {
		if ts[i].Name != n {
			t.Fatalf("order[%d] = %s, want %s (got %v)", i, ts[i].Name, n, ts)
		}
	}
}

func TestHyperperiod(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 1, Deadline: 4, Period: 4},
		{Name: "b", WCET: 1, Deadline: 6, Period: 6},
	}
	h, err := ts.Hyperperiod()
	if err != nil || h != 12 {
		t.Errorf("Hyperperiod() = %d, %v; want 12, nil", h, err)
	}
	if _, err := (TaskSet{}).Hyperperiod(); err == nil {
		t.Error("Hyperperiod() of empty set should error")
	}
}

func TestHyperperiodOverflow(t *testing.T) {
	big1 := int64(1) << 62
	ts := TaskSet{
		{Name: "a", WCET: 1, Deadline: big1, Period: big1},
		{Name: "b", WCET: 1, Deadline: big1 - 1, Period: big1 - 1},
	}
	if _, err := ts.Hyperperiod(); err == nil {
		t.Error("expected overflow error")
	}
}

func TestGCDLCM(t *testing.T) {
	if g := GCD(12, 18); g != 6 {
		t.Errorf("GCD(12,18) = %d, want 6", g)
	}
	if g := GCD(7, 13); g != 1 {
		t.Errorf("GCD(7,13) = %d, want 1", g)
	}
	l, err := LCM(4, 6)
	if err != nil || l != 12 {
		t.Errorf("LCM(4,6) = %d, %v; want 12", l, err)
	}
	if _, err := LCM(0, 5); err == nil {
		t.Error("LCM(0,5) should error")
	}
}

// Property: GCD divides both arguments and LCM is divisible by both.
func TestGCDLCMProperties(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		g := GCD(x, y)
		if x%g != 0 || y%g != 0 {
			return false
		}
		l, err := LCM(x, y)
		if err != nil {
			return false
		}
		return l%x == 0 && l%y == 0 && g*l == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaskString(t *testing.T) {
	imp := Task{Name: "a", WCET: 3, Deadline: 10, Period: 10}
	if got := imp.String(); got != "a(C=3,T=10)" {
		t.Errorf("String() = %q", got)
	}
	con := Task{Name: "b", Offset: 1, WCET: 3, Deadline: 5, Period: 10}
	if got := con.String(); got != "b(O=1,C=3,D=5,T=10)" {
		t.Errorf("String() = %q", got)
	}
}

func TestClone(t *testing.T) {
	ts := TaskSet{{Name: "a", WCET: 1, Deadline: 2, Period: 2}}
	c := ts.Clone()
	c[0].Name = "changed"
	if ts[0].Name != "a" {
		t.Error("Clone() did not deep-copy")
	}
}
