package periodic

import (
	"fmt"
	"testing"
)

func benchSet(n int) TaskSet {
	var ts TaskSet
	periods := []int64{10_000_000, 20_000_000, 25_000_000, 50_000_000}
	for i := 0; i < n; i++ {
		p := periods[i%len(periods)]
		ts = append(ts, Task{Name: fmt.Sprintf("t%d", i), Group: i, WCET: p / int64(n) / 2, Deadline: p, Period: p})
	}
	return ts
}

func BenchmarkEDFSchedulable(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		ts := benchSet(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !ts.EDFSchedulable() {
					b.Fatal("unexpectedly unschedulable")
				}
			}
		})
	}
}

func BenchmarkSimulateEDF(b *testing.B) {
	ts := benchSet(8)
	h, err := ts.Hyperperiod()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateEDF(ts, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFeasibleCEqualsD(b *testing.B) {
	ts := benchSet(4)
	for i := 0; i < b.N; i++ {
		ts.MaxFeasibleCEqualsD(10_000_000, 10_000_000)
	}
}

func BenchmarkDBF(b *testing.B) {
	ts := benchSet(32)
	for i := 0; i < b.N; i++ {
		ts.DBF(int64(i%100) * 1_000_000)
	}
}
