// Package periodic implements the periodic (Liu & Layland) and
// constrained-deadline real-time task models used by the Tableau planner,
// together with the schedulability machinery the paper's table-generation
// procedure relies on: exact utilization arithmetic, hyperperiod
// computation, demand-bound functions, the QPA exact EDF test, and a
// reference uniprocessor EDF simulator.
//
// All times are int64 nanoseconds. No floating point is used in any
// admission or schedulability decision; utilization comparisons are done
// with cross-multiplication or math/big rationals so that results are
// exact.
package periodic

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
)

// A Task is a periodic real-time task with a release offset and a
// constrained deadline. It releases a job at Offset + k*Period for every
// k >= 0; each job requires WCET units of processor time and must finish
// within Deadline of its release (Deadline <= Period).
//
// In Tableau each vCPU is represented by one Task (or, after C=D
// splitting, by several subtasks that share a Group).
type Task struct {
	// Name identifies the task (typically the vCPU name). Subtasks
	// produced by splitting share the Name of the original task.
	Name string

	// Group identifies the schedulable entity the task belongs to.
	// Subtasks of a split vCPU share a Group and must never run in
	// parallel. For unsplit tasks Group is the task's own index.
	Group int

	// Offset is the release time of the first job, in ns.
	Offset int64

	// WCET is the worst-case execution time per job (C), in ns.
	WCET int64

	// Deadline is the relative deadline (D), in ns. Must satisfy
	// 0 < WCET <= Deadline <= Period.
	Deadline int64

	// Period is the inter-release separation (T), in ns.
	Period int64
}

// Validate reports whether the task parameters are well formed.
func (t Task) Validate() error {
	switch {
	case t.Offset < 0:
		return fmt.Errorf("task %q: negative offset %d", t.Name, t.Offset)
	case t.WCET <= 0:
		return fmt.Errorf("task %q: non-positive WCET %d", t.Name, t.WCET)
	case t.Period <= 0:
		return fmt.Errorf("task %q: non-positive period %d", t.Name, t.Period)
	case t.Deadline < t.WCET:
		return fmt.Errorf("task %q: deadline %d < WCET %d", t.Name, t.Deadline, t.WCET)
	case t.Deadline > t.Period:
		return fmt.Errorf("task %q: deadline %d > period %d (constrained-deadline model only)", t.Name, t.Deadline, t.Period)
	}
	return nil
}

// Implicit reports whether the task has an implicit deadline (D == T).
func (t Task) Implicit() bool { return t.Deadline == t.Period }

// Util returns the task's utilization C/T as an exact rational.
func (t Task) Util() *big.Rat { return big.NewRat(t.WCET, t.Period) }

// UtilFloat returns the task's utilization as a float64, for reporting
// only (never used in admission decisions).
func (t Task) UtilFloat() float64 { return float64(t.WCET) / float64(t.Period) }

// Density returns the task's density C/min(D,T) as an exact rational.
func (t Task) Density() *big.Rat { return big.NewRat(t.WCET, t.Deadline) }

// String returns a compact representation, e.g. "web0(C=3.2ms,D=T=12.8ms)".
func (t Task) String() string {
	if t.Implicit() {
		return fmt.Sprintf("%s(C=%d,T=%d)", t.Name, t.WCET, t.Period)
	}
	return fmt.Sprintf("%s(O=%d,C=%d,D=%d,T=%d)", t.Name, t.Offset, t.WCET, t.Deadline, t.Period)
}

// A TaskSet is a collection of tasks assigned to one processor (or, for
// global analyses, to a cluster of processors).
type TaskSet []Task

// Validate checks every task in the set.
func (ts TaskSet) Validate() error {
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalUtil returns the exact total utilization of the set.
func (ts TaskSet) TotalUtil() *big.Rat {
	sum := new(big.Rat)
	for _, t := range ts {
		sum.Add(sum, t.Util())
	}
	return sum
}

// TotalUtilFloat returns the total utilization as a float64 (reporting
// only).
func (ts TaskSet) TotalUtilFloat() float64 {
	f, _ := ts.TotalUtil().Float64()
	return f
}

// UtilAtMost reports whether the exact total utilization is <= m (for an
// m-processor platform).
func (ts TaskSet) UtilAtMost(m int64) bool {
	return ts.TotalUtil().Cmp(new(big.Rat).SetInt64(m)) <= 0
}

// MaxDeadline returns the largest relative deadline in the set, or 0 for
// an empty set.
func (ts TaskSet) MaxDeadline() int64 {
	var d int64
	for _, t := range ts {
		if t.Deadline > d {
			d = t.Deadline
		}
	}
	return d
}

// MinDeadline returns the smallest relative deadline in the set, or 0 for
// an empty set.
func (ts TaskSet) MinDeadline() int64 {
	if len(ts) == 0 {
		return 0
	}
	d := ts[0].Deadline
	for _, t := range ts[1:] {
		if t.Deadline < d {
			d = t.Deadline
		}
	}
	return d
}

// Clone returns a deep copy of the set.
func (ts TaskSet) Clone() TaskSet {
	out := make(TaskSet, len(ts))
	copy(out, ts)
	return out
}

// SortByUtilDesc sorts the set by decreasing utilization (ties broken by
// name for determinism), the order required by worst-fit-decreasing
// partitioning.
func (ts TaskSet) SortByUtilDesc() {
	sort.SliceStable(ts, func(i, j int) bool {
		// ts[i].U > ts[j].U  <=>  Ci*Tj > Cj*Ti (all positive).
		l := ts[i].WCET * ts[j].Period
		r := ts[j].WCET * ts[i].Period
		if l != r {
			return l > r
		}
		return ts[i].Name < ts[j].Name
	})
}

// SortByUtilStable sorts by decreasing utilization preserving the
// existing order among equal-utilization tasks (used by the planner's
// split-rotation, which pre-rotates the slice).
func (ts TaskSet) SortByUtilStable() {
	sort.SliceStable(ts, func(i, j int) bool {
		return ts[i].WCET*ts[j].Period > ts[j].WCET*ts[i].Period
	})
}

// Hyperperiod returns the least common multiple of all task periods. It
// returns an error if the set is empty or the LCM overflows int64.
func (ts TaskSet) Hyperperiod() (int64, error) {
	if len(ts) == 0 {
		return 0, errors.New("periodic: hyperperiod of empty task set")
	}
	h := int64(1)
	for _, t := range ts {
		var err error
		h, err = LCM(h, t.Period)
		if err != nil {
			return 0, err
		}
	}
	return h, nil
}

// ErrOverflow is returned when an LCM computation exceeds int64.
var ErrOverflow = errors.New("periodic: int64 overflow")

// GCD returns the greatest common divisor of a and b (both > 0).
func GCD(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or ErrOverflow.
func LCM(a, b int64) (int64, error) {
	if a <= 0 || b <= 0 {
		return 0, fmt.Errorf("periodic: LCM of non-positive values %d, %d", a, b)
	}
	g := GCD(a, b)
	q := a / g
	if q > (1<<63-1)/b {
		return 0, ErrOverflow
	}
	return q * b, nil
}
