package periodic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBFBasics(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 2, Deadline: 5, Period: 10},
		{Name: "b", WCET: 3, Deadline: 10, Period: 10},
	}
	cases := []struct {
		t    int64
		want int64
	}{
		{0, 0},
		{4, 0},
		{5, 2}, // one job of a
		{9, 2},
		{10, 5}, // a + b
		{15, 7}, // 2a + b
		{20, 10},
	}
	for _, c := range cases {
		if got := ts.DBF(c.t); got != c.want {
			t.Errorf("DBF(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDBFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := randomTaskSet(rng, 5, 1000)
		prev := int64(0)
		for x := int64(0); x <= 3000; x += 37 {
			d := ts.DBF(x)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEDFSchedulableImplicit(t *testing.T) {
	// Implicit deadlines: schedulable iff U <= 1.
	ok := TaskSet{
		{Name: "a", WCET: 5, Deadline: 10, Period: 10},
		{Name: "b", WCET: 10, Deadline: 20, Period: 20},
	}
	if !ok.EDFSchedulable() {
		t.Error("U=1 implicit set should be schedulable")
	}
	over := TaskSet{
		{Name: "a", WCET: 6, Deadline: 10, Period: 10},
		{Name: "b", WCET: 10, Deadline: 20, Period: 20},
	}
	if over.EDFSchedulable() {
		t.Error("U>1 set should be unschedulable")
	}
}

func TestEDFSchedulableConstrained(t *testing.T) {
	// Classic example: constrained deadlines where U<=1 but demand
	// exceeds supply in a short window.
	bad := TaskSet{
		{Name: "a", WCET: 4, Deadline: 4, Period: 10},
		{Name: "b", WCET: 4, Deadline: 4, Period: 10},
	}
	if bad.EDFSchedulable() {
		t.Error("two C=D=4 tasks released together cannot both meet t=4")
	}
	good := TaskSet{
		{Name: "a", WCET: 2, Deadline: 4, Period: 10},
		{Name: "b", WCET: 2, Deadline: 4, Period: 10},
	}
	if !good.EDFSchedulable() {
		t.Error("set with dbf(4)=4 should be schedulable")
	}
}

func TestEDFSchedulableEmpty(t *testing.T) {
	if !(TaskSet{}).EDFSchedulable() {
		t.Error("empty set must be schedulable")
	}
}

// Property: QPA's verdict agrees with a direct EDF simulation over the
// hyperperiod for synchronous constrained-deadline sets. Simulation of a
// synchronous set over one hyperperiod is an exact schedulability oracle.
func TestQPAAgreesWithSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	agree, tested := 0, 0
	for i := 0; i < 400; i++ {
		ts := randomTaskSet(rng, 1+rng.Intn(5), 120)
		h, err := ts.Hyperperiod()
		if err != nil || h > 1_000_000 {
			continue
		}
		tested++
		qpa := ts.EDFSchedulable()
		_, simErr := SimulateEDF(ts, h)
		sim := simErr == nil
		if qpa != sim {
			t.Fatalf("set %v: QPA=%v but simulation=%v (%v)", ts, qpa, sim, simErr)
		}
		agree++
	}
	if tested < 100 {
		t.Fatalf("only %d sets tested; generator too restrictive", tested)
	}
	t.Logf("QPA agreed with simulation on %d/%d sets", agree, tested)
}

func TestMaxFeasibleCEqualsD(t *testing.T) {
	// Empty processor: a C=D task can take the whole period.
	c, ok := (TaskSet{}).MaxFeasibleCEqualsD(100, 100)
	if !ok || c != 100 {
		t.Errorf("empty set: got c=%d ok=%v, want 100 true", c, ok)
	}
	// Half-loaded processor.
	half := TaskSet{{Name: "a", WCET: 50, Deadline: 100, Period: 100}}
	c, ok = half.MaxFeasibleCEqualsD(100, 100)
	if !ok || c <= 0 || c > 50 {
		t.Errorf("half-loaded: got c=%d ok=%v, want 0<c<=50", c, ok)
	}
	// The augmented set must remain schedulable at the returned budget
	// and become unschedulable one ns above it.
	aug := append(half.Clone(), Task{Name: "cd", WCET: c, Deadline: c, Period: 100})
	if !aug.EDFSchedulable() {
		t.Error("returned budget must keep the set schedulable")
	}
	aug[len(aug)-1].WCET = c + 1
	aug[len(aug)-1].Deadline = c + 1
	if c+1 <= 100 && aug.EDFSchedulable() {
		t.Error("budget is not maximal: c+1 is also feasible")
	}
	// Fully loaded processor: nothing fits.
	full := TaskSet{{Name: "a", WCET: 100, Deadline: 100, Period: 100}}
	if _, ok := full.MaxFeasibleCEqualsD(100, 100); ok {
		t.Error("fully loaded processor should not accept any C=D budget")
	}
}

func TestMaxFeasibleConstrained(t *testing.T) {
	base := TaskSet{{Name: "a", WCET: 30, Deadline: 100, Period: 100}}
	c, ok := base.MaxFeasibleConstrained(60, 100, 100)
	if !ok || c <= 0 {
		t.Fatalf("expected positive feasible budget, got c=%d ok=%v", c, ok)
	}
	aug := append(base.Clone(), Task{Name: "t", WCET: c, Deadline: 60, Period: 100})
	if !aug.EDFSchedulable() {
		t.Error("returned budget must keep the set schedulable")
	}
	if c < 60 {
		aug[len(aug)-1].WCET = c + 1
		if aug.EDFSchedulable() {
			t.Error("budget is not maximal")
		}
	}
	if _, ok := base.MaxFeasibleConstrained(0, 100, 100); ok {
		t.Error("zero-deadline tail should not fit")
	}
}

// Property: MaxFeasibleCEqualsD returns a budget that is feasible, and
// maximal, for random base sets.
func TestMaxFeasibleCEqualsDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ts := randomTaskSet(rng, 1+rng.Intn(3), 100)
		period := int64(20 + rng.Intn(100))
		c, ok := ts.MaxFeasibleCEqualsD(period, period)
		if !ok {
			continue
		}
		aug := append(ts.Clone(), Task{Name: "cd", WCET: c, Deadline: c, Period: period})
		if !aug.EDFSchedulable() {
			t.Fatalf("set %v period %d: budget %d not feasible", ts, period, c)
		}
		if c < period {
			aug[len(aug)-1].WCET = c + 1
			aug[len(aug)-1].Deadline = c + 1
			if aug.EDFSchedulable() {
				t.Fatalf("set %v period %d: budget %d not maximal", ts, period, c)
			}
		}
	}
}

func TestDeadlines(t *testing.T) {
	ts := TaskSet{
		{Name: "a", WCET: 1, Deadline: 3, Period: 5},
		{Name: "b", WCET: 1, Deadline: 10, Period: 10},
	}
	ds := ts.Deadlines(10)
	want := []int64{0, 3, 5, 8, 10}
	if len(ds) != len(want) {
		t.Fatalf("Deadlines = %v, want %v", ds, want)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("Deadlines = %v, want %v", ds, want)
		}
	}
}

// randomTaskSet generates a valid constrained-deadline task set with
// periods drawn from small divisors of 600 so hyperperiods stay tame.
func randomTaskSet(rng *rand.Rand, n int, maxPeriod int64) TaskSet {
	periods := []int64{10, 20, 25, 30, 50, 60, 100, 120}
	var ts TaskSet
	for i := 0; i < n; i++ {
		p := periods[rng.Intn(len(periods))]
		if p > maxPeriod {
			p = maxPeriod
		}
		c := 1 + rng.Int63n(p/2)
		d := c + rng.Int63n(p-c+1)
		ts = append(ts, Task{
			Name:     string(rune('a' + i)),
			Group:    i,
			WCET:     c,
			Deadline: d,
			Period:   p,
		})
	}
	return ts
}
