package table

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary table format is the analogue of the paper's "compiled,
// binary format" that the userspace planner pushes to the hypervisor via
// a hypercall. It is versioned, little-endian, and self-contained: the
// dispatcher needs nothing else to start enacting the schedule.
const (
	formatMagic   = "TBLU"
	formatVersion = uint16(1)
)

const (
	flagCapped = 1 << iota
	flagSplit
)

// EncodedSize returns the exact number of bytes Encode will produce.
// This is what the Fig. 4 memory-overhead experiment measures.
func (t *Table) EncodedSize() int {
	n := 4 + 2 + 8 + 8 + 4 + 4 // magic, version, generation, len, numCores, numVCPUs
	for _, v := range t.VCPUs {
		n += 2 + len(v.Name) + 1 + 4 + 8 + 8
	}
	for _, ct := range t.Cores {
		n += 4 + 8 + 4 + len(ct.Allocs)*20 + 4 + len(ct.slices)*4
	}
	return n
}

// Decode reads a table in the binary wire format and rebuilds the slice
// index if it was not serialized.
func Decode(r io.Reader) (*Table, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("table: reading magic: %w", err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("table: bad magic %q", magic)
	}
	le := binary.LittleEndian
	var scratch [8]byte
	get16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return le.Uint16(scratch[:2]), nil
	}
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return le.Uint64(scratch[:8]), nil
	}

	ver, err := get16()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("table: unsupported format version %d", ver)
	}
	t := &Table{}
	gen, err := get64()
	if err != nil {
		return nil, err
	}
	t.Generation = gen
	l, err := get64()
	if err != nil {
		return nil, err
	}
	t.Len = int64(l)
	nc, err := get32()
	if err != nil {
		return nil, err
	}
	nv, err := get32()
	if err != nil {
		return nil, err
	}
	// Caps and chunked allocation below keep a hostile header (huge
	// declared counts followed by a truncated body) from forcing large
	// up-front allocations: slices grow as elements are actually read.
	const sanity = 1 << 20
	if nc > sanity || nv > sanity {
		return nil, fmt.Errorf("table: implausible core/vcpu counts %d/%d", nc, nv)
	}
	const chunk = 4096
	t.VCPUs = make([]VCPUInfo, 0, minU32(nv, chunk))
	for i := uint32(0); i < nv; i++ {
		nl, err := get16()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nl)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		fl, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		hc, err := get32()
		if err != nil {
			return nil, err
		}
		util, err := get64()
		if err != nil {
			return nil, err
		}
		lat, err := get64()
		if err != nil {
			return nil, err
		}
		t.VCPUs = append(t.VCPUs, VCPUInfo{
			Name:           string(name),
			Capped:         fl&flagCapped != 0,
			Split:          fl&flagSplit != 0,
			HomeCore:       int(int32(hc)),
			UtilizationPPM: int64(util),
			LatencyGoal:    int64(lat),
		})
	}
	t.Cores = make([]CoreTable, 0, minU32(nc, chunk))
	for i := uint32(0); i < nc; i++ {
		core, err := get32()
		if err != nil {
			return nil, err
		}
		sl, err := get64()
		if err != nil {
			return nil, err
		}
		na, err := get32()
		if err != nil {
			return nil, err
		}
		if na > sanity {
			return nil, fmt.Errorf("table: implausible alloc count %d", na)
		}
		var ct CoreTable
		ct.Core = int(int32(core))
		ct.SliceLen = int64(sl)
		ct.Allocs = make([]Alloc, 0, minU32(na, chunk))
		for j := uint32(0); j < na; j++ {
			s, err := get64()
			if err != nil {
				return nil, err
			}
			e, err := get64()
			if err != nil {
				return nil, err
			}
			v, err := get32()
			if err != nil {
				return nil, err
			}
			ct.Allocs = append(ct.Allocs, Alloc{Start: int64(s), End: int64(e), VCPU: int(int32(v))})
		}
		ns, err := get32()
		if err != nil {
			return nil, err
		}
		if ns > 64<<20 {
			return nil, fmt.Errorf("table: implausible slice count %d", ns)
		}
		ct.slices = make([]int32, 0, minU32(ns, chunk))
		for j := uint32(0); j < ns; j++ {
			s, err := get32()
			if err != nil {
				return nil, err
			}
			ct.slices = append(ct.slices, int32(s))
		}
		t.Cores = append(t.Cores, ct)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("table: decoded table invalid: %w", err)
	}
	// Slice data from the wire is untrusted: a corrupt index would turn
	// Lookup's O(1) arithmetic into out-of-bounds accesses. Verify it in
	// full (this also rejects a partial index, where only some non-empty
	// cores carry slices); rebuild from scratch when none was serialized.
	hasSlices := false
	for _, ct := range t.Cores {
		if ct.SliceLen != 0 || len(ct.slices) != 0 {
			hasSlices = true
			break
		}
	}
	if hasSlices {
		if err := t.CheckSlices(); err != nil {
			return nil, fmt.Errorf("table: decoded slice index invalid: %w", err)
		}
	} else if err := t.BuildSlices(0); err != nil {
		return nil, err
	}
	return t, nil
}

// DecodeBytes is Decode over an in-memory image — the shape the epoch
// journal stores tables in.
func DecodeBytes(b []byte) (*Table, error) {
	return Decode(bytes.NewReader(b))
}

func minU32(v uint32, cap uint32) int {
	if v < cap {
		return int(v)
	}
	return int(cap)
}
