package table

import (
	"math/rand"
	"sort"
	"testing"
)

func mkTable(t *testing.T, tlen int64, allocsPerCore [][]Alloc, nvcpus int) *Table {
	t.Helper()
	tbl := &Table{Len: tlen}
	for i, as := range allocsPerCore {
		tbl.Cores = append(tbl.Cores, CoreTable{Core: i, Allocs: as})
	}
	for i := 0; i < nvcpus; i++ {
		tbl.VCPUs = append(tbl.VCPUs, VCPUInfo{Name: "v" + string(rune('0'+i)), HomeCore: 0})
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		t.Fatalf("BuildSlices: %v", err)
	}
	return tbl
}

func TestValidateRejectsBadTables(t *testing.T) {
	cases := []struct {
		name string
		tbl  Table
	}{
		{"zero length", Table{Len: 0}},
		{"out of bounds", Table{Len: 100, VCPUs: make([]VCPUInfo, 1),
			Cores: []CoreTable{{Allocs: []Alloc{{50, 150, 0}}}}}},
		{"overlap", Table{Len: 100, VCPUs: make([]VCPUInfo, 1),
			Cores: []CoreTable{{Allocs: []Alloc{{0, 60, 0}, {50, 80, 0}}}}}},
		{"unknown vcpu", Table{Len: 100, Cores: []CoreTable{{Allocs: []Alloc{{0, 10, 3}}}}}},
		{"empty alloc", Table{Len: 100, VCPUs: make([]VCPUInfo, 1),
			Cores: []CoreTable{{Allocs: []Alloc{{10, 10, 0}}}}}},
		{"parallel split", Table{Len: 100, VCPUs: make([]VCPUInfo, 1), Cores: []CoreTable{
			{Core: 0, Allocs: []Alloc{{0, 50, 0}}},
			{Core: 1, Allocs: []Alloc{{40, 90, 0}}},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.tbl.Validate(); err == nil {
				t.Error("Validate accepted a bad table")
			}
		})
	}
}

func TestValidateAcceptsSplitWithoutOverlap(t *testing.T) {
	tbl := Table{Len: 100, VCPUs: make([]VCPUInfo, 1), Cores: []CoreTable{
		{Core: 0, Allocs: []Alloc{{0, 40, 0}}},
		{Core: 1, Allocs: []Alloc{{40, 90, 0}}},
	}}
	if err := tbl.Validate(); err != nil {
		t.Errorf("back-to-back split allocations must be legal: %v", err)
	}
}

func TestLookupBasic(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{
		{{0, 30, 0}, {30, 60, 1}, {80, 95, 0}},
	}, 2)
	cases := []struct {
		now      int64
		vcpu     int
		reserved bool
		until    int64
	}{
		{0, 0, true, 30},
		{29, 0, true, 30},
		{30, 1, true, 60},
		{59, 1, true, 60},
		{60, Idle, false, 80}, // idle gap
		{79, Idle, false, 80},
		{80, 0, true, 95},
		{95, Idle, false, 100}, // idle tail
		{99, Idle, false, 100},
		// Second cycle: absolute times continue.
		{100, 0, true, 130},
		{160, Idle, false, 180},
		{199, Idle, false, 200},
	}
	for _, c := range cases {
		v, r, u := tbl.Lookup(0, c.now)
		if v != c.vcpu || r != c.reserved || u != c.until {
			t.Errorf("Lookup(0, %d) = (%d, %v, %d), want (%d, %v, %d)",
				c.now, v, r, u, c.vcpu, c.reserved, c.until)
		}
	}
}

func TestLookupEmptyCore(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{{}}, 0)
	v, r, u := tbl.Lookup(0, 250)
	if v != Idle || r || u != 300 {
		t.Errorf("Lookup on empty core = (%d, %v, %d), want (Idle, false, 300)", v, r, u)
	}
}

// naiveLookup is the O(n) reference the slice-table lookup must match.
func naiveLookup(tbl *Table, core int, now int64) (int, bool, int64) {
	pos := now % tbl.Len
	cycleStart := now - pos
	for _, a := range tbl.Cores[core].Allocs {
		if pos < a.Start {
			return Idle, false, cycleStart + a.Start
		}
		if pos < a.End {
			return a.VCPU, a.VCPU != Idle, cycleStart + a.End
		}
	}
	return Idle, false, cycleStart + tbl.Len
}

// Property: slice-table lookup agrees with a naive scan at every ns of
// randomly generated tables.
func TestLookupMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tlen := int64(200 + rng.Intn(800))
		var allocs []Alloc
		pos := int64(0)
		for pos < tlen-20 {
			gap := int64(rng.Intn(30))
			l := int64(5 + rng.Intn(40))
			if pos+gap+l > tlen {
				break
			}
			allocs = append(allocs, Alloc{pos + gap, pos + gap + l, rng.Intn(3)})
			pos += gap + l
		}
		tbl := &Table{Len: tlen, VCPUs: make([]VCPUInfo, 3),
			Cores: []CoreTable{{Core: 0, Allocs: allocs}}}
		// Parallel-split validation may reject random vcpu collisions on
		// one core only if overlapping; ours are sequential, so fine.
		if err := tbl.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tbl.BuildSlices(0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for now := int64(0); now < 2*tlen; now++ {
			v1, r1, u1 := tbl.Lookup(0, now)
			v2, r2, u2 := naiveLookup(tbl, 0, now)
			if v1 != v2 || r1 != r2 || u1 != u2 {
				t.Fatalf("trial %d: Lookup(0,%d) = (%d,%v,%d), naive = (%d,%v,%d); allocs=%v",
					trial, now, v1, r1, u1, v2, r2, u2, allocs)
			}
		}
	}
}

func TestBuildSlicesGuard(t *testing.T) {
	// A 1-ns allocation in a long table would explode the slice count.
	tbl := &Table{Len: 1 << 30, VCPUs: make([]VCPUInfo, 1),
		Cores: []CoreTable{{Allocs: []Alloc{{0, 1, 0}}}}}
	if err := tbl.BuildSlices(1000); err == nil {
		t.Error("expected slice-count guard to trip")
	}
}

func TestCheckGuarantees(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{
		{{0, 25, 0}, {50, 75, 0}},
	}, 1)
	ok := []Guarantee{{VCPU: 0, Service: 25, WindowLen: 50, MaxBlackout: 30}}
	if err := tbl.Check(ok); err != nil {
		t.Errorf("valid guarantee rejected: %v", err)
	}
	tooMuch := []Guarantee{{VCPU: 0, Service: 26, WindowLen: 50}}
	if err := tbl.Check(tooMuch); err == nil {
		t.Error("service violation not detected")
	}
	tightBlackout := []Guarantee{{VCPU: 0, MaxBlackout: 20}}
	if err := tbl.Check(tightBlackout); err == nil {
		t.Error("blackout violation not detected: gap [75,100)+[0,0) = 25")
	}
	badWindow := []Guarantee{{VCPU: 0, Service: 1, WindowLen: 33}}
	if err := tbl.Check(badWindow); err == nil {
		t.Error("non-dividing window not detected")
	}
}

func TestCheckBlackoutAcrossWrap(t *testing.T) {
	// Service only at the start of the table: wrap gap is len-25.
	tbl := mkTable(t, 100, [][]Alloc{{{0, 25, 0}}}, 1)
	if err := tbl.Check([]Guarantee{{VCPU: 0, MaxBlackout: 75}}); err != nil {
		t.Errorf("blackout exactly at bound rejected: %v", err)
	}
	if err := tbl.Check([]Guarantee{{VCPU: 0, MaxBlackout: 74}}); err == nil {
		t.Error("wrap-around blackout of 75 not detected")
	}
}

func TestCheckMissingVCPU(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{{{0, 25, 0}}}, 2)
	if err := tbl.Check([]Guarantee{{VCPU: 1, MaxBlackout: 50}}); err == nil {
		t.Error("vcpu with no reservations must violate blackout guarantee")
	}
}

func TestVCPUSlotsAndService(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{
		{{0, 20, 0}, {40, 60, 1}},
		{{20, 35, 0}},
	}, 2)
	slots := tbl.VCPUSlots(0)
	if len(slots) != 2 || slots[0].Start != 0 || slots[1].Start != 20 {
		t.Errorf("VCPUSlots(0) = %v", slots)
	}
	if !sort.SliceIsSorted(slots, func(i, j int) bool { return slots[i].Start < slots[j].Start }) {
		t.Error("slots not sorted")
	}
	if got := tbl.ServiceOf(0); got != 35 {
		t.Errorf("ServiceOf(0) = %d, want 35", got)
	}
	if got := tbl.CoreOfVCPUAt(0, 25); got != 1 {
		t.Errorf("CoreOfVCPUAt(0, 25) = %d, want 1", got)
	}
	if got := tbl.CoreOfVCPUAt(0, 70); got != -1 {
		t.Errorf("CoreOfVCPUAt(0, 70) = %d, want -1", got)
	}
}

func TestSliceCount(t *testing.T) {
	tbl := mkTable(t, 100, [][]Alloc{{{0, 10, 0}}}, 1)
	if got := tbl.SliceCount(); got != 10 {
		t.Errorf("SliceCount = %d, want 10", got)
	}
}
