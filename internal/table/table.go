// Package table defines Tableau's scheduling-table data structures: the
// per-core allocation lists produced by the planner, the slice tables
// that give the dispatcher O(1) lookups (paper Sec. 6, Fig. 2), a compact
// binary serialization (the "compiled format" pushed to the hypervisor
// via hypercall in the paper), and checkers that prove a table satisfies
// the paper's two guarantees: minimum per-period service and bounded
// scheduling blackout.
package table

import (
	"errors"
	"fmt"
	"sort"
)

// Idle marks an interval during which no vCPU holds a reservation; the
// dispatcher hands such intervals to the second-level scheduler.
const Idle = -1

// An Alloc reserves the half-open interval [Start, End) of every table
// cycle for one vCPU on one core. Offsets are relative to the start of
// the table.
type Alloc struct {
	Start int64
	End   int64
	VCPU  int
}

// Len returns the allocation length in ns.
func (a Alloc) Len() int64 { return a.End - a.Start }

func (a Alloc) String() string {
	return fmt.Sprintf("[%d,%d)→vcpu%d", a.Start, a.End, a.VCPU)
}

// VCPUInfo carries the per-vCPU metadata the dispatcher needs beyond the
// raw reservations.
type VCPUInfo struct {
	// Name identifies the vCPU (e.g. "vm17.0").
	Name string
	// Capped vCPUs may consume only their reserved allocations; uncapped
	// vCPUs additionally take part in second-level scheduling.
	Capped bool
	// HomeCore is the core on which the vCPU participates in
	// second-level scheduling (the "trailing core" for split vCPUs).
	HomeCore int
	// Split reports whether the vCPU has reservations on more than one
	// core (semi-partitioning or cluster scheduling).
	Split bool
	// Utilization is the reserved utilization in parts-per-million, for
	// reporting and admission accounting.
	UtilizationPPM int64
	// LatencyGoal is the configured maximum scheduling latency L in ns.
	LatencyGoal int64
}

// CoreTable is the schedule of a single physical core: a sorted list of
// non-overlapping allocations plus the slice index that makes lookups
// O(1).
type CoreTable struct {
	Core   int
	Allocs []Alloc

	// SliceLen is this core's slice length: the length of the shortest
	// allocation, so that any slice overlaps at most two allocations.
	// Zero when the core has no allocations.
	SliceLen int64

	// slices[i] is the index into Allocs of the first allocation that
	// overlaps slice i, or len(Allocs) if the slice is entirely idle.
	slices []int32
}

// Table is a complete scheduling table for a machine.
type Table struct {
	// Len is the table length in ns; the schedule repeats cyclically
	// with this period. It is always a divisor multiple structure of
	// the planner's hyperperiod bound.
	Len int64
	// Cores holds one CoreTable per physical core.
	Cores []CoreTable
	// VCPUs holds metadata for every vCPU mentioned by any allocation.
	VCPUs []VCPUInfo
	// Generation is a monotonically increasing table version, used by
	// the dispatcher's lock-free table-switch protocol.
	Generation uint64
}

// NumCores returns the number of physical cores the table covers.
func (t *Table) NumCores() int { return len(t.Cores) }

// Validate checks the structural invariants of the table: allocation
// lists sorted and non-overlapping, intervals within [0, Len), vCPU
// indices in range, and — across cores — no two allocations of the same
// vCPU overlapping in time (split vCPUs must never run in parallel,
// paper Sec. 5).
func (t *Table) Validate() error {
	if t.Len <= 0 {
		return fmt.Errorf("table: non-positive length %d", t.Len)
	}
	for i := range t.VCPUs {
		if hc := t.VCPUs[i].HomeCore; hc < -1 || hc >= len(t.Cores) {
			return fmt.Errorf("table: vcpu %d (%s) has home core %d out of range [-1,%d)",
				i, t.VCPUs[i].Name, hc, len(t.Cores))
		}
	}
	// onCore[v] is the single core vCPU v has been seen on, -1 before
	// the first sighting, or multiCore once a second core appears. Only
	// multi-core vCPUs (splits) can violate the parallel-run invariant,
	// so the span-collection pass below runs just for them — the common
	// all-home-core table skips it entirely, and no map is involved.
	const multiCore = -2
	onCore := make([]int32, len(t.VCPUs))
	for i := range onCore {
		onCore[i] = -1
	}
	nMulti := 0
	seenCore := make([]bool, len(t.Cores))
	for _, ct := range t.Cores {
		if ct.Core < 0 || ct.Core >= len(t.Cores) {
			return fmt.Errorf("table: core id %d out of range [0,%d)", ct.Core, len(t.Cores))
		}
		if seenCore[ct.Core] {
			return fmt.Errorf("table: duplicate core id %d", ct.Core)
		}
		seenCore[ct.Core] = true
		var prevEnd int64
		for i, a := range ct.Allocs {
			if a.Start < 0 || a.End > t.Len || a.Len() <= 0 {
				return fmt.Errorf("table: core %d alloc %d out of bounds: %v", ct.Core, i, a)
			}
			if a.Start < prevEnd {
				return fmt.Errorf("table: core %d alloc %d overlaps predecessor: %v", ct.Core, i, a)
			}
			if a.VCPU != Idle {
				if a.VCPU < 0 || a.VCPU >= len(t.VCPUs) {
					return fmt.Errorf("table: core %d alloc %d references unknown vcpu %d", ct.Core, i, a.VCPU)
				}
				switch onCore[a.VCPU] {
				case -1:
					onCore[a.VCPU] = int32(ct.Core)
				case int32(ct.Core), multiCore:
				default:
					onCore[a.VCPU] = multiCore
					nMulti++
				}
			}
			prevEnd = a.End
		}
	}
	if nMulti == 0 {
		return nil
	}
	type span struct {
		start, end int64
		core       int
	}
	byVCPU := make(map[int][]span, nMulti)
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU != Idle && onCore[a.VCPU] == multiCore {
				byVCPU[a.VCPU] = append(byVCPU[a.VCPU], span{a.Start, a.End, ct.Core})
			}
		}
	}
	for v, spans := range byVCPU {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end && spans[i].core != spans[i-1].core {
				return fmt.Errorf("table: vcpu %d (%s) scheduled in parallel on cores %d and %d around t=%d",
					v, t.VCPUs[v].Name, spans[i-1].core, spans[i].core, spans[i].start)
			}
		}
	}
	return nil
}

// BuildSlices computes the slice tables for every core. It must be called
// after the allocation lists are final and before Lookup is used. An
// error is returned if a slice table would exceed maxSlices entries
// (guarding against pathological memory use; pass 0 for the default of
// 4 Mi entries per core).
func (t *Table) BuildSlices(maxSlices int) error {
	return t.buildSlices(maxSlices, false)
}

// BuildMissingSlices is BuildSlices restricted to cores that have no
// index yet: cores that adopted one via TransplantSlices keep it
// untouched (the transplant is only valid for an unchanged allocation
// list, so recomputing would produce the identical array). Callers
// must not mutate a transplanted core's allocations afterwards.
func (t *Table) BuildMissingSlices(maxSlices int) error {
	return t.buildSlices(maxSlices, true)
}

func (t *Table) buildSlices(maxSlices int, skipBuilt bool) error {
	const defaultMax = 4 << 20
	if maxSlices <= 0 {
		maxSlices = defaultMax
	}
	for ci := range t.Cores {
		ct := &t.Cores[ci]
		if len(ct.Allocs) == 0 {
			ct.SliceLen = 0
			ct.slices = nil
			continue
		}
		if skipBuilt && ct.SliceLen != 0 && ct.slices != nil {
			continue
		}
		shortest := ct.Allocs[0].Len()
		for _, a := range ct.Allocs[1:] {
			if l := a.Len(); l < shortest {
				shortest = l
			}
		}
		ct.SliceLen = shortest
		n := (t.Len + shortest - 1) / shortest
		if n > int64(maxSlices) {
			return fmt.Errorf("table: core %d would need %d slices (> %d); shortest allocation %d ns too small for table length %d",
				ct.Core, n, maxSlices, shortest, t.Len)
		}
		ct.slices = make([]int32, n)
		ai := 0
		for si := int64(0); si < n; si++ {
			sliceStart := si * shortest
			for ai < len(ct.Allocs) && ct.Allocs[ai].End <= sliceStart {
				ai++
			}
			ct.slices[si] = int32(ai)
		}
	}
	return nil
}

// TransplantSlices adopts src's slice index (slice length and backing
// array, shared — slice data is immutable once built). It is valid
// exactly when ct's allocation list has the same interval sequence as
// src's: slice entries are indices into the allocation list and never
// mention vCPUs or cores, so renaming vCPU ids or renumbering the core
// leaves the index bit-identical to what BuildSlices would recompute.
// It reports false, leaving ct untouched, when src has allocations but
// no built index to adopt.
func (ct *CoreTable) TransplantSlices(src *CoreTable) bool {
	if len(src.Allocs) > 0 && src.SliceLen == 0 {
		return false
	}
	ct.SliceLen = src.SliceLen
	ct.slices = src.slices
	return true
}

// CheckSlices verifies that every core's slice index is exactly what
// BuildSlices would produce for its allocation list and slice length —
// the invariants Lookup's two-record bound and its index arithmetic
// depend on. Tables from trusted in-process construction get this by
// construction; tables decoded from the wire must be checked before
// their slice data can be handed to the dispatcher, because a corrupt
// index (negative entries, wrong counts, a slice length longer than the
// shortest allocation) turns O(1) lookups into out-of-bounds accesses
// or wrong schedules.
func (t *Table) CheckSlices() error {
	for _, ct := range t.Cores {
		if len(ct.Allocs) == 0 {
			if ct.SliceLen != 0 || len(ct.slices) != 0 {
				return fmt.Errorf("table: core %d has slice data (len %d, %d entries) but no allocations",
					ct.Core, ct.SliceLen, len(ct.slices))
			}
			continue
		}
		if ct.SliceLen <= 0 {
			return fmt.Errorf("table: core %d has allocations but no slice index", ct.Core)
		}
		shortest := ct.Allocs[0].Len()
		for _, a := range ct.Allocs[1:] {
			if l := a.Len(); l < shortest {
				shortest = l
			}
		}
		if ct.SliceLen > shortest {
			return fmt.Errorf("table: core %d slice length %d exceeds shortest allocation %d",
				ct.Core, ct.SliceLen, shortest)
		}
		n := (t.Len + ct.SliceLen - 1) / ct.SliceLen
		if int64(len(ct.slices)) != n {
			return fmt.Errorf("table: core %d has %d slice entries, want %d for slice length %d",
				ct.Core, len(ct.slices), n, ct.SliceLen)
		}
		ai := 0
		for si := int64(0); si < n; si++ {
			sliceStart := si * ct.SliceLen
			for ai < len(ct.Allocs) && ct.Allocs[ai].End <= sliceStart {
				ai++
			}
			if ct.slices[si] != int32(ai) {
				return fmt.Errorf("table: core %d slice %d points at alloc %d, want %d",
					ct.Core, si, ct.slices[si], ai)
			}
		}
	}
	return nil
}

// Lookup returns the allocation covering time now (an absolute time; the
// table position is now modulo Len) on the given core, whether the
// interval is reserved (false means idle), and the absolute time at which
// the current interval ends and the dispatcher must be re-invoked.
//
// The lookup inspects at most two allocation records via the slice table,
// mirroring the paper's two-cache-line bound.
func (t *Table) Lookup(core int, now int64) (vcpu int, reserved bool, until int64) {
	ct := &t.Cores[core]
	pos := now % t.Len
	cycleStart := now - pos
	if ct.SliceLen == 0 {
		if len(ct.Allocs) > 0 {
			panic(ErrNoSlices)
		}
		// Core entirely idle in this table.
		return Idle, false, cycleStart + t.Len
	}
	si := pos / ct.SliceLen
	if si >= int64(len(ct.slices)) {
		si = int64(len(ct.slices)) - 1
	}
	ai := int(ct.slices[si])
	// The slice overlaps at most two allocations; examine them in order.
	for k := 0; k < 2 && ai+k < len(ct.Allocs); k++ {
		a := ct.Allocs[ai+k]
		if pos < a.Start {
			// Idle gap before this allocation.
			return Idle, false, cycleStart + a.Start
		}
		if pos < a.End {
			return a.VCPU, a.VCPU != Idle, cycleStart + a.End
		}
	}
	// Idle tail after the (at most two) allocations this slice overlaps.
	// Slice construction guarantees no third allocation can begin inside
	// the slice, so the next boundary is the start of allocs[ai+2] (in
	// a later slice) or the end of the table.
	if ai+2 < len(ct.Allocs) {
		return Idle, false, cycleStart + ct.Allocs[ai+2].Start
	}
	return Idle, false, cycleStart + t.Len
}

// VCPUSlots returns all allocations of one vCPU across all cores, sorted
// by start time. Used by the guarantee checkers and the wakeup logic.
func (t *Table) VCPUSlots(vcpu int) []Alloc {
	var out []Alloc
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == vcpu {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// CoreOfVCPUAt returns the core holding a reservation for the vCPU at
// table position pos, or -1 if none. Used by the dispatcher's wakeup
// routing ("send an IPI to the core with the current allocation").
func (t *Table) CoreOfVCPUAt(vcpu int, pos int64) int {
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == vcpu && pos >= a.Start && pos < a.End {
				return ct.Core
			}
		}
	}
	return -1
}

// ServiceOf returns the total reserved time of the vCPU per table cycle.
func (t *Table) ServiceOf(vcpu int) int64 {
	var s int64
	for _, a := range t.VCPUSlots(vcpu) {
		s += a.Len()
	}
	return s
}

// GuaranteeViolation describes a failed per-vCPU guarantee check.
type GuaranteeViolation struct {
	VCPU   int
	Name   string
	Kind   string // "service" or "blackout"
	Detail string
}

func (v *GuaranteeViolation) Error() string {
	return fmt.Sprintf("table: vcpu %d (%s) violates %s guarantee: %s", v.VCPU, v.Name, v.Kind, v.Detail)
}

// Guarantee is the contract the planner promised for one vCPU, expressed
// against the table: at least Service ns in every window of WindowLen ns
// (aligned to the table start), and no service gap longer than
// MaxBlackout ns in the cyclic schedule.
type Guarantee struct {
	VCPU        int
	Service     int64
	WindowLen   int64
	MaxBlackout int64
}

// Check verifies the given guarantees against the table. It returns the
// first violation found, or nil if every guarantee holds. WindowLen must
// divide the table length (the planner arranges this by construction).
func (t *Table) Check(gs []Guarantee) error {
	if len(gs) == 0 {
		return nil
	}
	// Bucket every vCPU's allocations in one pass over the table: the
	// per-guarantee VCPUSlots scan made checking O(guarantees x total
	// allocations), which dominated plan verification on dense hosts.
	// Buckets share one backing array sized by a counting pass; a
	// vCPU's allocations arrive core by core (each core's list already
	// start-sorted), so only multi-core vCPUs (splits) need the sort.
	counts := make([]int32, len(t.VCPUs))
	total := 0
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU >= 0 && a.VCPU < len(t.VCPUs) {
				counts[a.VCPU]++
				total++
			}
		}
	}
	backing := make([]Alloc, 0, total)
	buckets := make([][]Alloc, len(t.VCPUs))
	off := 0
	for v, c := range counts {
		buckets[v] = backing[off : off : off+int(c)]
		off += int(c)
	}
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU >= 0 && a.VCPU < len(t.VCPUs) {
				buckets[a.VCPU] = append(buckets[a.VCPU], a)
			}
		}
	}
	for v := range buckets {
		s := buckets[v]
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Start < s[j].Start }) {
			sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
		}
	}
	for _, g := range gs {
		var slots []Alloc
		if g.VCPU >= 0 && g.VCPU < len(buckets) {
			slots = buckets[g.VCPU]
		}
		name := ""
		if g.VCPU >= 0 && g.VCPU < len(t.VCPUs) {
			name = t.VCPUs[g.VCPU].Name
		}
		if g.WindowLen > 0 {
			if t.Len%g.WindowLen != 0 {
				return &GuaranteeViolation{g.VCPU, name, "service",
					fmt.Sprintf("window %d does not divide table length %d", g.WindowLen, t.Len)}
			}
			// One pass over the slots, crediting each allocation to the
			// windows it overlaps, then one pass over the windows.
			svc := make([]int64, t.Len/g.WindowLen)
			for _, a := range slots {
				// Clamp to the table: Check does not assume Validate ran,
				// and the original window scan only ever covered [0, Len).
				first := a.Start - a.Start%g.WindowLen
				if first < 0 {
					first = 0
				}
				end := a.End
				if end > t.Len {
					end = t.Len
				}
				for w := first; w < end; w += g.WindowLen {
					lo, hi := a.Start, a.End
					if lo < w {
						lo = w
					}
					if hi > w+g.WindowLen {
						hi = w + g.WindowLen
					}
					if hi > lo {
						svc[w/g.WindowLen] += hi - lo
					}
				}
			}
			for wi, got := range svc {
				if got < g.Service {
					w := int64(wi) * g.WindowLen
					return &GuaranteeViolation{g.VCPU, name, "service",
						fmt.Sprintf("window [%d,%d): got %d ns, want >= %d ns", w, w+g.WindowLen, got, g.Service)}
				}
			}
		}
		if g.MaxBlackout > 0 {
			if len(slots) == 0 {
				return &GuaranteeViolation{g.VCPU, name, "blackout", "vcpu has no reservations"}
			}
			worst := int64(0)
			prevEnd := slots[len(slots)-1].End - t.Len
			for _, a := range slots {
				if gap := a.Start - prevEnd; gap > worst {
					worst = gap
				}
				if a.End > prevEnd {
					prevEnd = a.End
				}
			}
			if worst > g.MaxBlackout {
				return &GuaranteeViolation{g.VCPU, name, "blackout",
					fmt.Sprintf("observed %d ns > bound %d ns", worst, g.MaxBlackout)}
			}
		}
	}
	return nil
}

// ErrNoSlices is returned by methods that require BuildSlices first.
var ErrNoSlices = errors.New("table: BuildSlices has not been called")

// SliceCount returns the total number of slice entries across all cores
// (a proxy for the dispatcher-visible memory footprint).
func (t *Table) SliceCount() int {
	n := 0
	for _, ct := range t.Cores {
		n += len(ct.slices)
	}
	return n
}
