// Package table defines Tableau's scheduling-table data structures: the
// per-core allocation lists produced by the planner, the slice tables
// that give the dispatcher O(1) lookups (paper Sec. 6, Fig. 2), a compact
// binary serialization (the "compiled format" pushed to the hypervisor
// via hypercall in the paper), and checkers that prove a table satisfies
// the paper's two guarantees: minimum per-period service and bounded
// scheduling blackout.
package table

import (
	"errors"
	"fmt"
	"sort"
)

// Idle marks an interval during which no vCPU holds a reservation; the
// dispatcher hands such intervals to the second-level scheduler.
const Idle = -1

// An Alloc reserves the half-open interval [Start, End) of every table
// cycle for one vCPU on one core. Offsets are relative to the start of
// the table.
type Alloc struct {
	Start int64
	End   int64
	VCPU  int
}

// Len returns the allocation length in ns.
func (a Alloc) Len() int64 { return a.End - a.Start }

func (a Alloc) String() string {
	return fmt.Sprintf("[%d,%d)→vcpu%d", a.Start, a.End, a.VCPU)
}

// VCPUInfo carries the per-vCPU metadata the dispatcher needs beyond the
// raw reservations.
type VCPUInfo struct {
	// Name identifies the vCPU (e.g. "vm17.0").
	Name string
	// Capped vCPUs may consume only their reserved allocations; uncapped
	// vCPUs additionally take part in second-level scheduling.
	Capped bool
	// HomeCore is the core on which the vCPU participates in
	// second-level scheduling (the "trailing core" for split vCPUs).
	HomeCore int
	// Split reports whether the vCPU has reservations on more than one
	// core (semi-partitioning or cluster scheduling).
	Split bool
	// Utilization is the reserved utilization in parts-per-million, for
	// reporting and admission accounting.
	UtilizationPPM int64
	// LatencyGoal is the configured maximum scheduling latency L in ns.
	LatencyGoal int64
}

// CoreTable is the schedule of a single physical core: a sorted list of
// non-overlapping allocations plus the slice index that makes lookups
// O(1).
type CoreTable struct {
	Core   int
	Allocs []Alloc

	// SliceLen is this core's slice length: the length of the shortest
	// allocation, so that any slice overlaps at most two allocations.
	// Zero when the core has no allocations.
	SliceLen int64

	// slices[i] is the index into Allocs of the first allocation that
	// overlaps slice i, or len(Allocs) if the slice is entirely idle.
	slices []int32
}

// Table is a complete scheduling table for a machine.
type Table struct {
	// Len is the table length in ns; the schedule repeats cyclically
	// with this period. It is always a divisor multiple structure of
	// the planner's hyperperiod bound.
	Len int64
	// Cores holds one CoreTable per physical core.
	Cores []CoreTable
	// VCPUs holds metadata for every vCPU mentioned by any allocation.
	VCPUs []VCPUInfo
	// Generation is a monotonically increasing table version, used by
	// the dispatcher's lock-free table-switch protocol.
	Generation uint64
}

// NumCores returns the number of physical cores the table covers.
func (t *Table) NumCores() int { return len(t.Cores) }

// Validate checks the structural invariants of the table: allocation
// lists sorted and non-overlapping, intervals within [0, Len), vCPU
// indices in range, and — across cores — no two allocations of the same
// vCPU overlapping in time (split vCPUs must never run in parallel,
// paper Sec. 5).
func (t *Table) Validate() error {
	if t.Len <= 0 {
		return fmt.Errorf("table: non-positive length %d", t.Len)
	}
	for i := range t.VCPUs {
		if hc := t.VCPUs[i].HomeCore; hc < -1 || hc >= len(t.Cores) {
			return fmt.Errorf("table: vcpu %d (%s) has home core %d out of range [-1,%d)",
				i, t.VCPUs[i].Name, hc, len(t.Cores))
		}
	}
	type span struct {
		start, end int64
		core       int
	}
	byVCPU := make(map[int][]span)
	seenCore := make([]bool, len(t.Cores))
	for _, ct := range t.Cores {
		if ct.Core < 0 || ct.Core >= len(t.Cores) {
			return fmt.Errorf("table: core id %d out of range [0,%d)", ct.Core, len(t.Cores))
		}
		if seenCore[ct.Core] {
			return fmt.Errorf("table: duplicate core id %d", ct.Core)
		}
		seenCore[ct.Core] = true
		var prevEnd int64
		for i, a := range ct.Allocs {
			if a.Start < 0 || a.End > t.Len || a.Len() <= 0 {
				return fmt.Errorf("table: core %d alloc %d out of bounds: %v", ct.Core, i, a)
			}
			if a.Start < prevEnd {
				return fmt.Errorf("table: core %d alloc %d overlaps predecessor: %v", ct.Core, i, a)
			}
			if a.VCPU != Idle {
				if a.VCPU < 0 || a.VCPU >= len(t.VCPUs) {
					return fmt.Errorf("table: core %d alloc %d references unknown vcpu %d", ct.Core, i, a.VCPU)
				}
				byVCPU[a.VCPU] = append(byVCPU[a.VCPU], span{a.Start, a.End, ct.Core})
			}
			prevEnd = a.End
		}
	}
	for v, spans := range byVCPU {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end && spans[i].core != spans[i-1].core {
				return fmt.Errorf("table: vcpu %d (%s) scheduled in parallel on cores %d and %d around t=%d",
					v, t.VCPUs[v].Name, spans[i-1].core, spans[i].core, spans[i].start)
			}
		}
	}
	return nil
}

// BuildSlices computes the slice tables for every core. It must be called
// after the allocation lists are final and before Lookup is used. An
// error is returned if a slice table would exceed maxSlices entries
// (guarding against pathological memory use; pass 0 for the default of
// 4 Mi entries per core).
func (t *Table) BuildSlices(maxSlices int) error {
	const defaultMax = 4 << 20
	if maxSlices <= 0 {
		maxSlices = defaultMax
	}
	for ci := range t.Cores {
		ct := &t.Cores[ci]
		if len(ct.Allocs) == 0 {
			ct.SliceLen = 0
			ct.slices = nil
			continue
		}
		shortest := ct.Allocs[0].Len()
		for _, a := range ct.Allocs[1:] {
			if l := a.Len(); l < shortest {
				shortest = l
			}
		}
		ct.SliceLen = shortest
		n := (t.Len + shortest - 1) / shortest
		if n > int64(maxSlices) {
			return fmt.Errorf("table: core %d would need %d slices (> %d); shortest allocation %d ns too small for table length %d",
				ct.Core, n, maxSlices, shortest, t.Len)
		}
		ct.slices = make([]int32, n)
		ai := 0
		for si := int64(0); si < n; si++ {
			sliceStart := si * shortest
			for ai < len(ct.Allocs) && ct.Allocs[ai].End <= sliceStart {
				ai++
			}
			ct.slices[si] = int32(ai)
		}
	}
	return nil
}

// CheckSlices verifies that every core's slice index is exactly what
// BuildSlices would produce for its allocation list and slice length —
// the invariants Lookup's two-record bound and its index arithmetic
// depend on. Tables from trusted in-process construction get this by
// construction; tables decoded from the wire must be checked before
// their slice data can be handed to the dispatcher, because a corrupt
// index (negative entries, wrong counts, a slice length longer than the
// shortest allocation) turns O(1) lookups into out-of-bounds accesses
// or wrong schedules.
func (t *Table) CheckSlices() error {
	for _, ct := range t.Cores {
		if len(ct.Allocs) == 0 {
			if ct.SliceLen != 0 || len(ct.slices) != 0 {
				return fmt.Errorf("table: core %d has slice data (len %d, %d entries) but no allocations",
					ct.Core, ct.SliceLen, len(ct.slices))
			}
			continue
		}
		if ct.SliceLen <= 0 {
			return fmt.Errorf("table: core %d has allocations but no slice index", ct.Core)
		}
		shortest := ct.Allocs[0].Len()
		for _, a := range ct.Allocs[1:] {
			if l := a.Len(); l < shortest {
				shortest = l
			}
		}
		if ct.SliceLen > shortest {
			return fmt.Errorf("table: core %d slice length %d exceeds shortest allocation %d",
				ct.Core, ct.SliceLen, shortest)
		}
		n := (t.Len + ct.SliceLen - 1) / ct.SliceLen
		if int64(len(ct.slices)) != n {
			return fmt.Errorf("table: core %d has %d slice entries, want %d for slice length %d",
				ct.Core, len(ct.slices), n, ct.SliceLen)
		}
		ai := 0
		for si := int64(0); si < n; si++ {
			sliceStart := si * ct.SliceLen
			for ai < len(ct.Allocs) && ct.Allocs[ai].End <= sliceStart {
				ai++
			}
			if ct.slices[si] != int32(ai) {
				return fmt.Errorf("table: core %d slice %d points at alloc %d, want %d",
					ct.Core, si, ct.slices[si], ai)
			}
		}
	}
	return nil
}

// Lookup returns the allocation covering time now (an absolute time; the
// table position is now modulo Len) on the given core, whether the
// interval is reserved (false means idle), and the absolute time at which
// the current interval ends and the dispatcher must be re-invoked.
//
// The lookup inspects at most two allocation records via the slice table,
// mirroring the paper's two-cache-line bound.
func (t *Table) Lookup(core int, now int64) (vcpu int, reserved bool, until int64) {
	ct := &t.Cores[core]
	pos := now % t.Len
	cycleStart := now - pos
	if ct.SliceLen == 0 {
		if len(ct.Allocs) > 0 {
			panic(ErrNoSlices)
		}
		// Core entirely idle in this table.
		return Idle, false, cycleStart + t.Len
	}
	si := pos / ct.SliceLen
	if si >= int64(len(ct.slices)) {
		si = int64(len(ct.slices)) - 1
	}
	ai := int(ct.slices[si])
	// The slice overlaps at most two allocations; examine them in order.
	for k := 0; k < 2 && ai+k < len(ct.Allocs); k++ {
		a := ct.Allocs[ai+k]
		if pos < a.Start {
			// Idle gap before this allocation.
			return Idle, false, cycleStart + a.Start
		}
		if pos < a.End {
			return a.VCPU, a.VCPU != Idle, cycleStart + a.End
		}
	}
	// Idle tail after the (at most two) allocations this slice overlaps.
	// Slice construction guarantees no third allocation can begin inside
	// the slice, so the next boundary is the start of allocs[ai+2] (in
	// a later slice) or the end of the table.
	if ai+2 < len(ct.Allocs) {
		return Idle, false, cycleStart + ct.Allocs[ai+2].Start
	}
	return Idle, false, cycleStart + t.Len
}

// VCPUSlots returns all allocations of one vCPU across all cores, sorted
// by start time. Used by the guarantee checkers and the wakeup logic.
func (t *Table) VCPUSlots(vcpu int) []Alloc {
	var out []Alloc
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == vcpu {
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// CoreOfVCPUAt returns the core holding a reservation for the vCPU at
// table position pos, or -1 if none. Used by the dispatcher's wakeup
// routing ("send an IPI to the core with the current allocation").
func (t *Table) CoreOfVCPUAt(vcpu int, pos int64) int {
	for _, ct := range t.Cores {
		for _, a := range ct.Allocs {
			if a.VCPU == vcpu && pos >= a.Start && pos < a.End {
				return ct.Core
			}
		}
	}
	return -1
}

// ServiceOf returns the total reserved time of the vCPU per table cycle.
func (t *Table) ServiceOf(vcpu int) int64 {
	var s int64
	for _, a := range t.VCPUSlots(vcpu) {
		s += a.Len()
	}
	return s
}

// GuaranteeViolation describes a failed per-vCPU guarantee check.
type GuaranteeViolation struct {
	VCPU   int
	Name   string
	Kind   string // "service" or "blackout"
	Detail string
}

func (v *GuaranteeViolation) Error() string {
	return fmt.Sprintf("table: vcpu %d (%s) violates %s guarantee: %s", v.VCPU, v.Name, v.Kind, v.Detail)
}

// Guarantee is the contract the planner promised for one vCPU, expressed
// against the table: at least Service ns in every window of WindowLen ns
// (aligned to the table start), and no service gap longer than
// MaxBlackout ns in the cyclic schedule.
type Guarantee struct {
	VCPU        int
	Service     int64
	WindowLen   int64
	MaxBlackout int64
}

// Check verifies the given guarantees against the table. It returns the
// first violation found, or nil if every guarantee holds. WindowLen must
// divide the table length (the planner arranges this by construction).
func (t *Table) Check(gs []Guarantee) error {
	for _, g := range gs {
		slots := t.VCPUSlots(g.VCPU)
		name := ""
		if g.VCPU >= 0 && g.VCPU < len(t.VCPUs) {
			name = t.VCPUs[g.VCPU].Name
		}
		if g.WindowLen > 0 {
			if t.Len%g.WindowLen != 0 {
				return &GuaranteeViolation{g.VCPU, name, "service",
					fmt.Sprintf("window %d does not divide table length %d", g.WindowLen, t.Len)}
			}
			for w := int64(0); w < t.Len; w += g.WindowLen {
				var svc int64
				for _, a := range slots {
					lo, hi := a.Start, a.End
					if lo < w {
						lo = w
					}
					if hi > w+g.WindowLen {
						hi = w + g.WindowLen
					}
					if hi > lo {
						svc += hi - lo
					}
				}
				if svc < g.Service {
					return &GuaranteeViolation{g.VCPU, name, "service",
						fmt.Sprintf("window [%d,%d): got %d ns, want >= %d ns", w, w+g.WindowLen, svc, g.Service)}
				}
			}
		}
		if g.MaxBlackout > 0 {
			if len(slots) == 0 {
				return &GuaranteeViolation{g.VCPU, name, "blackout", "vcpu has no reservations"}
			}
			worst := int64(0)
			prevEnd := slots[len(slots)-1].End - t.Len
			for _, a := range slots {
				if gap := a.Start - prevEnd; gap > worst {
					worst = gap
				}
				if a.End > prevEnd {
					prevEnd = a.End
				}
			}
			if worst > g.MaxBlackout {
				return &GuaranteeViolation{g.VCPU, name, "blackout",
					fmt.Sprintf("observed %d ns > bound %d ns", worst, g.MaxBlackout)}
			}
		}
	}
	return nil
}

// ErrNoSlices is returned by methods that require BuildSlices first.
var ErrNoSlices = errors.New("table: BuildSlices has not been called")

// SliceCount returns the total number of slice entries across all cores
// (a proxy for the dispatcher-visible memory footprint).
func (t *Table) SliceCount() int {
	n := 0
	for _, ct := range t.Cores {
		n += len(ct.slices)
	}
	return n
}
