package table_test

import (
	"bytes"
	"fmt"

	"tableau/internal/table"
)

// ExampleTable_Lookup builds a two-VM table and performs the
// dispatcher's O(1) hot-path lookup.
func ExampleTable_Lookup() {
	tbl := &table.Table{
		Len: 10_000_000, // 10 ms cycle
		VCPUs: []table.VCPUInfo{
			{Name: "web", Capped: true, HomeCore: 0},
			{Name: "batch", HomeCore: 0},
		},
		Cores: []table.CoreTable{{
			Core: 0,
			Allocs: []table.Alloc{
				{Start: 0, End: 2_500_000, VCPU: 0},
				{Start: 2_500_000, End: 7_500_000, VCPU: 1},
			},
		}},
	}
	if err := tbl.Validate(); err != nil {
		panic(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		panic(err)
	}
	for _, now := range []int64{1_000_000, 5_000_000, 9_000_000, 11_000_000} {
		vcpu, reserved, until := tbl.Lookup(0, now)
		who := "idle"
		if reserved {
			who = tbl.VCPUs[vcpu].Name
		}
		fmt.Printf("t=%2dms: %-5s until %.1fms\n", now/1_000_000, who, float64(until)/1e6)
	}
	// Output:
	// t= 1ms: web   until 2.5ms
	// t= 5ms: batch until 7.5ms
	// t= 9ms: idle  until 10.0ms
	// t=11ms: web   until 12.5ms
}

// ExampleTable_Check verifies the paper's two guarantees against a
// concrete table: per-window service and bounded blackout.
func ExampleTable_Check() {
	tbl := &table.Table{
		Len:   10_000_000,
		VCPUs: []table.VCPUInfo{{Name: "web", Capped: true}},
		Cores: []table.CoreTable{{
			Core:   0,
			Allocs: []table.Alloc{{Start: 0, End: 2_500_000, VCPU: 0}},
		}},
	}
	_ = tbl.Validate()
	good := []table.Guarantee{{VCPU: 0, Service: 2_500_000, WindowLen: 10_000_000, MaxBlackout: 8_000_000}}
	fmt.Println("good:", tbl.Check(good))
	tooTight := []table.Guarantee{{VCPU: 0, MaxBlackout: 7_000_000}}
	fmt.Println("tight:", tbl.Check(tooTight) != nil)
	// Output:
	// good: <nil>
	// tight: true
}

// ExampleTable_Encode shows the binary round trip of the "compiled
// format" the planner pushes to the dispatcher.
func ExampleTable_Encode() {
	tbl := &table.Table{
		Len:        10_000_000,
		Generation: 3,
		VCPUs:      []table.VCPUInfo{{Name: "web"}},
		Cores:      []table.CoreTable{{Core: 0, Allocs: []table.Alloc{{Start: 0, End: 2_500_000, VCPU: 0}}}},
	}
	_ = tbl.Validate()
	_ = tbl.BuildSlices(0)
	var buf bytes.Buffer
	_ = tbl.Encode(&buf)
	back, err := table.Decode(&buf)
	fmt.Println(err, back.Generation, back.VCPUs[0].Name, back.ServiceOf(0))
	// Output: <nil> 3 web 2500000
}
