package table

import "testing"

func BenchmarkLookup(b *testing.B) {
	tbl := &Table{Len: 11_411_400, VCPUs: make([]VCPUInfo, 4)}
	var allocs []Alloc
	for i := int64(0); i < 4; i++ {
		allocs = append(allocs, Alloc{Start: i * 2_852_850, End: (i + 1) * 2_852_850, VCPU: int(i)})
	}
	tbl.Cores = []CoreTable{{Core: 0, Allocs: allocs}}
	if err := tbl.Validate(); err != nil {
		b.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		v, _, _ := tbl.Lookup(0, int64(i)*7919)
		sink += v
	}
	_ = sink
}
