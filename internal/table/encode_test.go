package table

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl := &Table{
		Len:        1000,
		Generation: 7,
		VCPUs: []VCPUInfo{
			{Name: "vm0.0", Capped: true, HomeCore: 0, UtilizationPPM: 250_000, LatencyGoal: 20_000_000},
			{Name: "vm1.0", Capped: false, Split: true, HomeCore: 1, UtilizationPPM: 500_000, LatencyGoal: 10_000_000},
		},
		Cores: []CoreTable{
			{Core: 0, Allocs: []Alloc{{0, 250, 0}, {400, 700, 1}}},
			{Core: 1, Allocs: []Alloc{{700, 950, 1}}},
		},
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.BuildSlices(0); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), tbl.EncodedSize(); got != want {
		t.Errorf("encoded %d bytes, EncodedSize predicted %d", got, want)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tbl)
	}
}

// Compact encoding drops the slice index; Decode rebuilds it, so the
// round trip is lossless and the decoded table matches the original
// exactly. Segment reuse against a previous compact encoding must be
// byte-identical to a fresh compact encode.
func TestEncodeCompactRoundTripAndReuse(t *testing.T) {
	tbl := sampleTable(t)
	enc, err := tbl.AppendEncodedCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(enc), tbl.EncodedSizeCompact(); got != want {
		t.Errorf("encoded %d bytes, EncodedSizeCompact predicted %d", got, want)
	}
	if full := tbl.EncodedSize(); len(enc) >= full {
		t.Errorf("compact encoding (%d bytes) not smaller than full (%d)", len(enc), full)
	}
	got, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tbl) {
		t.Errorf("compact round trip mismatch:\n got %+v\nwant %+v", got, tbl)
	}

	// A successor table with one core changed: reuse from (tbl, enc)
	// must produce exactly what a fresh compact encode produces.
	next := sampleTable(t)
	next.Generation = 8
	next.Cores[1].Allocs = []Alloc{{750, 950, 1}}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := next.BuildSlices(0); err != nil {
		t.Fatal(err)
	}
	fresh, err := next.AppendEncodedCompact(nil)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := next.AppendEncodedReusingCompact(nil, tbl, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, reused) {
		t.Error("segment-reusing compact encode differs from fresh compact encode")
	}
	// Mismatched prevBytes must degrade to a full encode, not corrupt.
	reused, err = next.AppendEncodedReusingCompact(nil, tbl, enc[:len(enc)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, reused) {
		t.Error("compact encode with rejected prevBytes differs from fresh encode")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x00\x00\x00\x00\x00\x00\x00\x00"),
		"truncated": []byte("TBLU\x01\x00"),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode(bytes.NewReader(b)); err == nil {
				t.Error("Decode accepted garbage")
			}
		})
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	tbl := sampleTable(t)
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xff // corrupt version
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("Decode accepted wrong version")
	}
}

func TestDecodeValidates(t *testing.T) {
	// Encode a structurally invalid table by hand-crafting overlapping
	// allocations, then confirm Decode rejects it.
	tbl := sampleTable(t)
	tbl.Cores[0].Allocs = []Alloc{{0, 600, 0}, {500, 900, 1}}
	var buf bytes.Buffer
	if err := tbl.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(&buf); err == nil {
		t.Error("Decode accepted an invalid table")
	}
}

// Property: random valid tables round-trip exactly.
func TestEncodeDecodeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		tlen := int64(500 + rng.Intn(1000))
		nv := 1 + rng.Intn(4)
		tbl := &Table{Len: tlen, Generation: uint64(trial)}
		for i := 0; i < nv; i++ {
			tbl.VCPUs = append(tbl.VCPUs, VCPUInfo{
				Name:           "v" + string(rune('a'+i)),
				Capped:         rng.Intn(2) == 0,
				HomeCore:       rng.Intn(2),
				UtilizationPPM: rng.Int63n(1_000_000),
				LatencyGoal:    rng.Int63n(100_000_000),
			})
		}
		for c := 0; c < 2; c++ {
			var allocs []Alloc
			pos := int64(0)
			for pos < tlen-50 {
				gap := int64(rng.Intn(40))
				l := int64(10 + rng.Intn(60))
				if pos+gap+l > tlen {
					break
				}
				// Keep each vcpu on one core to avoid parallel-split
				// validation failures.
				v := c*nv/2 + rng.Intn(max(1, nv/2))
				if v >= nv {
					v = nv - 1
				}
				allocs = append(allocs, Alloc{pos + gap, pos + gap + l, v})
				pos += gap + l
			}
			tbl.Cores = append(tbl.Cores, CoreTable{Core: c, Allocs: allocs})
		}
		if err := tbl.Validate(); err != nil {
			// Random vcpu placement may still produce a parallel split;
			// skip those instances.
			continue
		}
		if err := tbl.BuildSlices(0); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tbl.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, tbl) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}
