package table_test

// The decoder consumes tables that crossed a network (plannersvc) or a
// file system, so it must hold up against truncated, bit-flipped, and
// adversarial inputs: never panic, and never return a table whose slice
// index would send the dispatcher out of bounds. The corpus seeds are
// round-tripped planner output — realistic canonical encodings whose
// mutations explore the format's actual structure, not just random
// bytes. Run with `make fuzz` (or `go test -fuzz FuzzTableDecode`).

import (
	"bytes"
	"fmt"
	"testing"

	"tableau/internal/planner"
	"tableau/internal/table"
)

// corpusTables builds a few representative planner outputs: single- and
// multi-core, uniform and mixed-latency populations, plus one table
// encoded without its slice index (the decoder rebuilds it).
func corpusTables(tb testing.TB) [][]byte {
	var out [][]byte
	add := func(cores, vms int, goal int64) {
		specs := make([]planner.VCPUSpec, vms)
		for i := range specs {
			g := goal
			if i%3 == 2 {
				g = goal * 2
			}
			specs[i] = planner.VCPUSpec{
				Name:        fmt.Sprintf("vm%d", i),
				Util:        planner.Util{Num: 1, Den: 4},
				LatencyGoal: g,
				Capped:      i%2 == 0,
			}
		}
		res, err := planner.Plan(specs, planner.Options{Cores: cores})
		if err != nil {
			tb.Fatalf("corpus plan (%d cores, %d vms): %v", cores, vms, err)
		}
		var buf bytes.Buffer
		if err := res.Table.Encode(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	add(1, 3, 20_000_000)
	add(2, 8, 20_000_000)
	add(4, 12, 10_000_000)

	// A sliceless encoding: allocations only, decoder must rebuild.
	bare := &table.Table{
		Len: 1_000_000,
		Cores: []table.CoreTable{
			{Core: 0, Allocs: []table.Alloc{{Start: 0, End: 400_000, VCPU: 0}, {Start: 600_000, End: 1_000_000, VCPU: 1}}},
			{Core: 1},
		},
		VCPUs: []table.VCPUInfo{{Name: "a", HomeCore: 0}, {Name: "b", HomeCore: 0}},
	}
	var buf bytes.Buffer
	if err := bare.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	out = append(out, buf.Bytes())
	return out
}

func FuzzTableDecode(f *testing.F) {
	for _, enc := range corpusTables(f) {
		f.Add(enc)
		// Truncations and bit flips of canonical encodings steer the
		// fuzzer into every section of the format.
		f.Add(enc[:len(enc)/2])
		f.Add(enc[:len(enc)-1])
		for _, pos := range []int{8, len(enc) / 3, 2 * len(enc) / 3} {
			flipped := append([]byte(nil), enc...)
			flipped[pos] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := table.Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine — just must not panic
		}
		// An accepted table must uphold every dispatcher-facing
		// invariant, not merely have parsed.
		if err := tbl.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid table: %v", err)
		}
		if err := tbl.CheckSlices(); err != nil {
			t.Fatalf("Decode accepted a corrupt slice index: %v", err)
		}
		// Lookup must be safe at arbitrary times on every core.
		for c := range tbl.Cores {
			for _, now := range []int64{0, 1, tbl.Len / 2, tbl.Len - 1, tbl.Len, tbl.Len + tbl.Len/2, 10 * tbl.Len} {
				vcpu, reserved, until := tbl.Lookup(c, now)
				if until <= now {
					t.Fatalf("Lookup(%d, %d) returned non-advancing until %d", c, now, until)
				}
				if reserved && (vcpu < 0 || vcpu >= len(tbl.VCPUs)) {
					t.Fatalf("Lookup(%d, %d) returned out-of-range vcpu %d", c, now, vcpu)
				}
			}
		}
		// Accepted tables must round-trip: re-encoding and decoding may
		// not fail or change what the dispatcher would see.
		var buf bytes.Buffer
		if err := tbl.Encode(&buf); err != nil {
			t.Fatalf("re-encode of accepted table failed: %v", err)
		}
		if _, err := table.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decode of accepted table failed: %v", err)
		}
	})
}
