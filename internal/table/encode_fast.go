package table

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"
)

// headerEncodedSize is the fixed prefix: magic, version, generation,
// table length, core count, vcpu count.
func headerEncodedSize() int { return len(formatMagic) + 2 + 8 + 8 + 4 + 4 }

// vcpusEncodedSize is the VCPU metadata section.
func (t *Table) vcpusEncodedSize() int {
	n := 0
	for _, v := range t.VCPUs {
		n += 2 + len(v.Name) + 1 + 4 + 8 + 8
	}
	return n
}

// coreEncodedSize is one core's segment: id, slice length, allocation
// list, slice index.
func coreEncodedSize(ct *CoreTable) int {
	return 4 + 8 + 4 + 20*len(ct.Allocs) + 4 + 4*len(ct.slices)
}

// coreEncodedSizeCompact is the segment with the slice index omitted
// (slice length 0, index count 0 — Decode rebuilds the index).
func coreEncodedSizeCompact(ct *CoreTable) int {
	return 4 + 8 + 4 + 20*len(ct.Allocs) + 4
}

// EncodedSizeCompact returns the exact number of bytes
// AppendEncodedCompact will produce.
func (t *Table) EncodedSizeCompact() int {
	n := headerEncodedSize() + t.vcpusEncodedSize()
	for i := range t.Cores {
		n += coreEncodedSizeCompact(&t.Cores[i])
	}
	return n
}

func (t *Table) encodeHeader(buf []byte) int {
	le := binary.LittleEndian
	o := copy(buf, formatMagic)
	le.PutUint16(buf[o:], formatVersion)
	o += 2
	le.PutUint64(buf[o:], t.Generation)
	o += 8
	le.PutUint64(buf[o:], uint64(t.Len))
	o += 8
	le.PutUint32(buf[o:], uint32(len(t.Cores)))
	o += 4
	le.PutUint32(buf[o:], uint32(len(t.VCPUs)))
	o += 4
	return o
}

func (t *Table) encodeVCPUs(buf []byte) (int, error) {
	le := binary.LittleEndian
	o := 0
	for _, v := range t.VCPUs {
		if len(v.Name) > 0xffff {
			return o, fmt.Errorf("table: vcpu name too long (%d bytes)", len(v.Name))
		}
		le.PutUint16(buf[o:], uint16(len(v.Name)))
		o += 2
		o += copy(buf[o:], v.Name)
		var fl byte
		if v.Capped {
			fl |= flagCapped
		}
		if v.Split {
			fl |= flagSplit
		}
		buf[o] = fl
		o++
		le.PutUint32(buf[o:], uint32(v.HomeCore))
		o += 4
		le.PutUint64(buf[o:], uint64(v.UtilizationPPM))
		o += 8
		le.PutUint64(buf[o:], uint64(v.LatencyGoal))
		o += 8
	}
	return o, nil
}

func encodeCore(buf []byte, ct *CoreTable, compact bool) int {
	le := binary.LittleEndian
	le.PutUint32(buf, uint32(ct.Core))
	o := 4
	if compact {
		// Slice length 0 + index count 0: the index is derived data and
		// Decode rebuilds it, so compact encodings omit it entirely.
		le.PutUint64(buf[o:], 0)
	} else {
		le.PutUint64(buf[o:], uint64(ct.SliceLen))
	}
	o += 8
	le.PutUint32(buf[o:], uint32(len(ct.Allocs)))
	o += 4
	for _, a := range ct.Allocs {
		le.PutUint64(buf[o:], uint64(a.Start))
		le.PutUint64(buf[o+8:], uint64(a.End))
		le.PutUint32(buf[o+16:], uint32(int32(a.VCPU)))
		o += 20
	}
	if compact {
		le.PutUint32(buf[o:], 0)
		return o + 4
	}
	le.PutUint32(buf[o:], uint32(len(ct.slices)))
	o += 4
	for _, s := range ct.slices {
		le.PutUint32(buf[o:], uint32(s))
		o += 4
	}
	return o
}

// grow ensures room for need more bytes past len(dst) and returns dst
// along with the write window.
func grow(dst []byte, need int) ([]byte, []byte) {
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	return dst, dst[len(dst) : len(dst)+need]
}

// AppendEncoded appends the table's binary wire encoding to dst and
// returns the extended slice. It produces exactly the bytes Encode
// writes, but fills a single buffer with direct offset arithmetic —
// the epoch-commit path encodes a full table per churn flush, and the
// per-field writer calls of a streaming encoder dominated that cost.
func (t *Table) AppendEncoded(dst []byte) ([]byte, error) {
	return t.appendEncodedReusing(dst, nil, nil, false)
}

// AppendEncodedCompact appends the table's wire encoding with the
// per-core slice index omitted (slice length and index count encoded as
// zero). The index is a pure function of the allocation lists, so
// Decode rebuilds it losslessly; leaving it off the wire shrinks dense
// tables by roughly an order of magnitude — the index typically dwarfs
// the allocation lists it summarizes.
func (t *Table) AppendEncodedCompact(dst []byte) ([]byte, error) {
	return t.appendEncodedReusing(dst, nil, nil, true)
}

// AppendEncodedReusingCompact is AppendEncodedCompact with the same
// cross-epoch segment reuse as AppendEncodedReusing; prevBytes must be
// prev's compact encoding. In compact form a core's segment depends
// only on its id and allocation list, so reuse needs no slice-length
// agreement.
func (t *Table) AppendEncodedReusingCompact(dst []byte, prev *Table, prevBytes []byte) ([]byte, error) {
	if prev == nil || prev.Len != t.Len || len(prev.Cores) != len(t.Cores) ||
		len(prevBytes) != prev.EncodedSizeCompact() {
		prev, prevBytes = nil, nil
	}
	return t.appendEncodedReusing(dst, prev, prevBytes, true)
}

// AppendEncodedReusing is AppendEncoded with cross-epoch segment
// reuse: any core whose id, slice length, and full allocation list are
// unchanged from prev has its encoded segment copied verbatim out of
// prevBytes instead of being re-encoded field by field. The slice
// index is a pure function of (table length, allocation intervals,
// slice length) — see TransplantSlices — so segment equality follows
// from those checks and never has to be re-derived from the index
// itself. prevBytes must be prev's exact encoding (its length is
// verified against prev.EncodedSize()); on any mismatch the call
// degrades to a full encode.
func (t *Table) AppendEncodedReusing(dst []byte, prev *Table, prevBytes []byte) ([]byte, error) {
	if prev == nil || prev.Len != t.Len || len(prev.Cores) != len(t.Cores) ||
		len(prevBytes) != prev.EncodedSize() {
		prev, prevBytes = nil, nil
	}
	return t.appendEncodedReusing(dst, prev, prevBytes, false)
}

func (t *Table) appendEncodedReusing(dst []byte, prev *Table, prevBytes []byte, compact bool) ([]byte, error) {
	need := t.EncodedSize()
	if compact {
		need = t.EncodedSizeCompact()
	}
	dst, buf := grow(dst, need)
	o := t.encodeHeader(buf)
	n, err := t.encodeVCPUs(buf[o:])
	if err != nil {
		return dst, err
	}
	o += n
	prevOff := 0
	if prev != nil {
		prevOff = headerEncodedSize() + prev.vcpusEncodedSize()
	}
	for ci := range t.Cores {
		ct := &t.Cores[ci]
		if prev != nil {
			pc := &prev.Cores[ci]
			seg := coreEncodedSize(pc)
			same := ct.Core == pc.Core && slices.Equal(ct.Allocs, pc.Allocs)
			if compact {
				seg = coreEncodedSizeCompact(pc)
			} else {
				same = same && ct.SliceLen == pc.SliceLen && len(ct.slices) == len(pc.slices)
			}
			if same {
				o += copy(buf[o:], prevBytes[prevOff:prevOff+seg])
				prevOff += seg
				continue
			}
			prevOff += seg
		}
		o += encodeCore(buf[o:], ct, compact)
	}
	if o != need {
		return dst, fmt.Errorf("table: encoded %d bytes, expected %d", o, need)
	}
	return dst[:len(dst)+need], nil
}

// Encode writes the table, including slice tables, in the binary wire
// format. BuildSlices should have been called if the consumer expects
// O(1) lookup structures (a table with no slice data is still valid and
// the decoder rebuilds slices on demand).
func (t *Table) Encode(w io.Writer) error {
	buf, err := t.AppendEncoded(nil)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
