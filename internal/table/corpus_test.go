package table_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("update", false, "rewrite the committed fuzz seed corpus")

// corpusEntries materializes the committed seed corpus for
// FuzzTableDecode: the canonical planner encodings plus the same
// deterministic truncations and bit flips FuzzTableDecode seeds with,
// so `go test -fuzz` starts from the full set even before the in-test
// f.Add calls run.
func corpusEntries(tb testing.TB) [][]byte {
	var out [][]byte
	for _, enc := range corpusTables(tb) {
		out = append(out, enc, enc[:len(enc)/2], enc[:len(enc)-1])
		for _, pos := range []int{8, len(enc) / 3, 2 * len(enc) / 3} {
			flipped := append([]byte(nil), enc...)
			flipped[pos] ^= 0x40
			out = append(out, flipped)
		}
	}
	return out
}

// TestTableFuzzCorpus pins the committed seed corpus to the canonical
// planner encodings: with -update it rewrites the files, otherwise it
// fails if they have drifted (e.g. after a wire-format change).
func TestTableFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTableDecode")
	for i, enc := range corpusEntries(t) {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", enc)
		if *updateCorpus {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with `go test -run TestTableFuzzCorpus -update`)", err)
		}
		if string(got) != want {
			t.Fatalf("%s drifted from the canonical encoding (regenerate with `go test -run TestTableFuzzCorpus -update`)", path)
		}
	}
}
