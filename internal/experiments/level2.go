package experiments

import (
	"fmt"

	"tableau/internal/planner"
	"tableau/internal/workload"
)

// Level2Share reproduces the Sec. 7.4 trace analysis: with the web
// workload fixed at 700 req/s in the uncapped scenario, what fraction
// of the scheduling decisions that dispatched the vantage VM were made
// by the second-level round-robin scheduler rather than the table? The
// paper observed over 85%.
type Level2Share struct {
	TableDispatches   int64
	SecondLevel       int64
	Fraction          float64
	AchievedRPS       float64
	TotalL2Dispatches int64
}

// RunLevel2Share runs the trace experiment.
func RunLevel2Share(mode Mode) (Level2Share, error) {
	srv := NewWebServer()
	sc, err := Build(ScenarioConfig{
		Scheduler:  Tableau,
		Capped:     false,
		Background: BGIO,
		Seed:       23,
	}, srv.Program())
	if err != nil {
		return Level2Share{}, err
	}
	srv.Bind(sc.Vantage)
	duration := int64(2_000_000_000)
	if mode == Full {
		duration = 10_000_000_000
	}
	srv.CountUntil = duration
	sc.M.Start()
	workload.RunOpenLoop(sc.M, srv, 0, 700, duration, 100*KiB)
	sc.M.Run(duration + 200_000_000)
	sc.M.Stop()
	st := sc.Dispatcher.Stats()
	l1 := st.PerVCPUTable[sc.Vantage.ID]
	l2 := st.PerVCPUSecond[sc.Vantage.ID]
	frac := 0.0
	if l1+l2 > 0 {
		frac = float64(l2) / float64(l1+l2)
	}
	return Level2Share{
		TableDispatches:   l1,
		SecondLevel:       l2,
		Fraction:          frac,
		AchievedRPS:       float64(srv.CompletedInWindow()) / (float64(duration) / 1e9),
		TotalL2Dispatches: st.SecondLevelDispatches,
	}, nil
}

// Level2Result renders the experiment. The single cell still goes
// through the worker pool so every driver shares one execution path.
func Level2Result(mode Mode) (*Result, error) {
	shares, err := Collect(1, func(int) (Level2Share, error) {
		return RunLevel2Share(mode)
	})
	if err != nil {
		return nil, err
	}
	s := shares[0]
	return &Result{
		Name:   "level2",
		Title:  "Share of vantage-VM dispatches made by the second-level scheduler (uncapped, 700 req/s, 100 KiB)",
		Header: []string{"table_dispatches", "second_level_dispatches", "second_level_share", "achieved_rps"},
		Rows: [][]string{{
			itoa(s.TableDispatches),
			itoa(s.SecondLevel),
			fmt.Sprintf("%.1f%%", s.Fraction*100),
			ftoa(s.AchievedRPS),
		}},
		Note: "Paper: over 85% of the decisions dispatching the vantage VM came from the level-2 round-robin scheduler.",
	}, nil
}

// AblationPoint summarizes one planner configuration on one workload.
type AblationPoint struct {
	Workload      string
	Config        string
	Planned       bool
	Stage         planner.Stage
	Splits        int
	Preempt       int
	CtxSw         int
	SwitchesSaved int
}

// RunAblation exercises the planner's three-stage progression (Sec. 5)
// on workloads of increasing difficulty, with the later stages
// selectively disabled, reporting which configurations succeed and at
// what preemption cost. This quantifies the design decision to try
// partitioning first and fall back only when needed.
func RunAblation() []AblationPoint {
	type wl struct {
		name  string
		specs []planner.VCPUSpec
		cores int
	}
	mk := func(name string, cores int, utils []planner.Util) wl {
		var specs []planner.VCPUSpec
		for i, u := range utils {
			specs = append(specs, planner.VCPUSpec{
				Name:        fmt.Sprintf("%s%d", name, i),
				Util:        u,
				LatencyGoal: 50_000_000,
			})
		}
		return wl{name: name, specs: specs, cores: cores}
	}
	u := func(n, d int64) planner.Util { return planner.Util{Num: n, Den: d} }
	// mixed uses diverse utilizations and latency goals, the shape where
	// EDF preemption remnants give the peephole pass room to work.
	mixed := wl{name: "mixed", cores: 2}
	mixedGoals := []int64{5, 30, 60, 100, 50, 80}
	for i, uu := range []planner.Util{u(1, 2), u(1, 4), u(1, 8), u(1, 8), u(1, 4), u(1, 3)} {
		mixed.specs = append(mixed.specs, planner.VCPUSpec{
			Name:        fmt.Sprintf("mixed%d", i),
			Util:        uu,
			LatencyGoal: mixedGoals[i] * 1_000_000,
		})
	}
	workloads := []wl{
		mk("easy", 4, []planner.Util{u(1, 4), u(1, 4), u(1, 4), u(1, 4), u(1, 4), u(1, 4), u(1, 4), u(1, 4)}),
		mixed,
		mk("tight", 3, []planner.Util{u(3, 5), u(3, 5), u(3, 5), u(3, 5)}),
		// Fully-utilized system whose per-core slack is too small for
		// enforceable C=D pieces: only the optimal cluster scheduler
		// can place the last task (the paper's "pathological" case).
		mk("pathological", 2, []planner.Util{u(199, 200), u(199, 200), u(1, 100)}),
	}
	configs := []struct {
		name string
		opts planner.Options
	}{
		{"partition-only", planner.Options{DisableSplitting: true, DisableClustering: true}},
		{"partition+split", planner.Options{DisableClustering: true}},
		{"full", planner.Options{}},
		{"full+peephole", planner.Options{Peephole: true}},
	}
	var out []AblationPoint
	for _, w := range workloads {
		for _, c := range configs {
			opts := c.opts
			opts.Cores = w.cores
			// Through the shared cache: the ablation's own keys are all
			// distinct (every point is a different config), but repeated
			// runs in one process hit, and the counters feed the report.
			res, err := PlannerCache.Plan(w.specs, opts)
			p := AblationPoint{Workload: w.name, Config: c.name, Planned: err == nil}
			if err == nil {
				p.Stage = res.Stage
				p.Splits = len(res.Splits)
				p.Preempt = res.Preemptions
				p.CtxSw = res.ContextSwitches
				p.SwitchesSaved = res.SwitchesSaved
			}
			out = append(out, p)
		}
	}
	return out
}

// AblationResult renders the ablation, including the process-wide
// planner-cache counters (Sec. 7.1): every Tableau scenario build,
// sweep point, and ablation config in this process plans through the
// shared PlannerCache, so the counters show how much table generation
// the cache absorbed across the whole experiment run.
func AblationResult() *Result {
	pts := RunAblation()
	hits, misses := PlannerCache.Stats()
	r := &Result{
		Name:   "ablation",
		Title:  "Planner stage ablation: which table-generation techniques are needed",
		Header: []string{"workload", "config", "planned", "stage", "splits", "preemptions", "ctx_switches", "peephole_saved"},
		Note: "The paper expects partitioning to suffice for regular cloud workloads, C=D splitting for tight packings, and cluster scheduling only for pathological cases; full+peephole adds the Sec. 5 context-switch reduction extension. " +
			fmt.Sprintf("Sec. 7.1 table cache this process: %d hits, %d misses.", hits, misses),
	}
	for _, p := range pts {
		stage, splits, pre, ctx, saved := "-", "-", "-", "-", "-"
		if p.Planned {
			stage = p.Stage.String()
			splits = fmt.Sprintf("%d", p.Splits)
			pre = fmt.Sprintf("%d", p.Preempt)
			ctx = fmt.Sprintf("%d", p.CtxSw)
			saved = fmt.Sprintf("%d", p.SwitchesSaved)
		}
		r.Rows = append(r.Rows, []string{p.Workload, p.Config, fmt.Sprintf("%v", p.Planned), stage, splits, pre, ctx, saved})
	}
	return r
}
