package experiments

import (
	"testing"

	"tableau/internal/workload"
)

// TestTracedRunBehaviorUnchanged pins the tracer's zero-interference
// property: attaching it must not change a single scheduling decision,
// only record them.
func TestTracedRunBehaviorUnchanged(t *testing.T) {
	run := func(records int) (int64, int64, int64) {
		probe := &workload.Probe{Chunk: 10_000}
		sc, err := Build(ScenarioConfig{Scheduler: Tableau, Capped: true, Background: BGCPU, Seed: 42, TraceRecords: records}, probe.Program())
		if err != nil {
			t.Fatal(err)
		}
		sc.M.Start()
		sc.M.Run(500_000_000)
		sc.M.Stop()
		return probe.MaxDelay(), sc.M.Stats.ScheduleOps, sc.M.Stats.WakeupOps
	}
	d1, s1, w1 := run(0)
	d2, s2, w2 := run(1 << 12)
	if d1 != d2 || s1 != s2 || w1 != w2 {
		t.Fatalf("tracing changed behavior: untraced (%d,%d,%d) traced (%d,%d,%d)", d1, s1, w1, d2, s2, w2)
	}
	t.Logf("identical: maxdelay=%d scheduleops=%d wakeups=%d", d1, s1, w1)
}
