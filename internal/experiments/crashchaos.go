package experiments

import (
	"bytes"

	"tableau/internal/verify"
)

// The crashchaos experiment measures the durability claim of the epoch
// journal: across hundreds of seeded crash storms — churn bursts on a
// small host, a process death planted at a journal append boundary
// (before the write, mid-write, after the write, or with a bit flipped
// in flight) — core.Recover must resume on exactly the epoch a
// never-crashed shadow run had committed at that point, bit for bit,
// and the first post-recovery epoch must keep every surviving
// guarantee. Every row is a pure function of its seed, so the CSV is
// byte-stable across runs and across -parallel settings.

// CrashPoint is one seeded crash storm of the crashchaos matrix.
type CrashPoint struct {
	Seed     int64
	Kind     string
	AtAppend int64 // 1-based append boundary the crash fired on
	Bursts   int64 // committed churn bursts in the script
	Cores    int64
	Slots    int64
	// ExpectedVersion is the epoch the shadow run says recovery must
	// resume on; RecoveredVersion is what Recover actually reported.
	ExpectedVersion  int64
	RecoveredVersion int64
	// BitIdentical reports that the recovered epoch's table bytes match
	// the shadow epoch of the same version exactly.
	BitIdentical bool
	// TruncatedBytes is the torn/corrupt tail cut during recovery;
	// Replanned reports the emergency replan that supersedes a lost
	// tail.
	TruncatedBytes int64
	Replanned      bool
	// SeamVersion is the first post-recovery epoch committed through
	// the recovered controller.
	SeamVersion int64
	// Violations counts recovery-oracle findings; the acceptance gate
	// demands zero on every row.
	Violations int64
}

// RunCrashStorm runs one seeded crash storm end to end and scores it
// with the recovery oracles.
func RunCrashStorm(seed int64) (CrashPoint, error) {
	sc := verify.GenerateCrashScenario(seed)
	pt := CrashPoint{
		Seed:            seed,
		Kind:            sc.Kind,
		AtAppend:        int64(sc.AtAppend),
		Bursts:          int64(len(sc.Script)),
		Cores:           int64(sc.Cores),
		Slots:           int64(len(sc.VMs)),
		ExpectedVersion: int64(sc.WantVersion),
	}
	a, err := verify.RunCrash(sc)
	if err != nil {
		return pt, err
	}
	pt.RecoveredVersion = int64(a.Report.RecoveredVersion)
	pt.BitIdentical = bytes.Equal(a.Report.RecoveredBytes, a.Truth[sc.WantVersion-1].Bytes)
	pt.TruncatedBytes = int64(a.Report.TruncatedBytes)
	pt.Replanned = a.Report.Replanned
	pt.SeamVersion = int64(a.SeamVersion)
	pt.Violations = int64(len(verify.CheckRecovery(a)))
	return pt, nil
}

// crashChaosSeeds is the matrix size per mode. Quick already covers
// the 200-storm acceptance floor; Full doubles it.
func crashChaosSeeds(mode Mode) int {
	if mode == Full {
		return 400
	}
	return 200
}

// CrashChaos runs the full seeded crash matrix and renders it.
func CrashChaos(mode Mode) (*Result, error) {
	n := crashChaosSeeds(mode)
	r := &Result{
		Name:   "crashchaos",
		Title:  "Durable epoch journal under seeded crash storms: recovery equivalence vs a never-crashed shadow run",
		Header: []string{"seed", "kind", "at_append", "bursts", "cores", "slots", "expected_version", "recovered_version", "bit_identical", "truncated_bytes", "replanned", "seam_version", "violations"},
		Note:   "Each seed is one crash storm: churn bursts committing one epoch each, a crash planted at journal append boundary at_append (pre-append / torn / post-append / bit-flip), then core.Recover on the surviving bytes. bit_identical compares recovered epoch bytes against the shadow epoch of the same version; violations counts recovery-oracle findings (version mismatch, byte drift, phantom or unreported tail damage, guarantees lost across the crash seam) and must be 0 on every row.",
	}
	pts, err := Collect(n, func(i int) (CrashPoint, error) {
		return RunCrashStorm(int64(i))
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			itoa(p.Seed), p.Kind, itoa(p.AtAppend), itoa(p.Bursts),
			itoa(p.Cores), itoa(p.Slots),
			itoa(p.ExpectedVersion), itoa(p.RecoveredVersion), b2s(p.BitIdentical),
			itoa(p.TruncatedBytes), b2s(p.Replanned), itoa(p.SeamVersion),
			itoa(p.Violations),
		})
	}
	return r, nil
}

func b2s(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
