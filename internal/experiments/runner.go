package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The paper's evaluation grid — scheduler × capped × background × seed
// × offered rate — is a set of mutually independent deterministic
// simulations: each cell owns its own sim.Engine seeded independently,
// so no state is shared between cells and any execution order produces
// bit-identical results. The runner fans those cells out across worker
// goroutines while keeping results slot-indexed, so the rendered rows
// are byte-identical to a serial run regardless of worker count.

// parallelism is the configured worker fan-out; <= 0 selects
// GOMAXPROCS. It is read atomically so tests may flip it while cells
// run elsewhere.
var parallelism atomic.Int32

// SetParallelism sets the worker count used to fan out independent
// experiment cells. n <= 0 restores the default (GOMAXPROCS). It is
// safe to call concurrently, but a running fan-out keeps the worker
// count it started with.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across Parallelism() worker
// goroutines and returns the error of the lowest-indexed failed cell
// (so the reported error does not depend on scheduling order). With a
// single worker — or n <= 1 — the cells run serially on the calling
// goroutine.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Collect fans out n independent cells and gathers their results in
// slot order: out[i] is cell i's result no matter which worker ran it
// or when it finished. On error the lowest-indexed cell error is
// returned and the partial results are discarded.
func Collect[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		var cellErr error
		out[i], cellErr = fn(i)
		return cellErr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
