package experiments

import (
	"fmt"

	"tableau/internal/vmm"
	"tableau/internal/workload"
)

// IntrinsicPoint is one bar of Fig. 5: the maximum scheduling delay
// observed by a redis-cli-style CPU-bound probe in the vantage VM.
type IntrinsicPoint struct {
	Scheduler  SchedulerKind
	Capped     bool
	Background BGKind
	MaxDelay   int64
	Samples    int64
}

// RunIntrinsic reproduces Fig. 5 for one (scheduler, capped, background)
// cell.
func RunIntrinsic(kind SchedulerKind, capped bool, bg BGKind, mode Mode, seed int64) (IntrinsicPoint, error) {
	probe := &workload.Probe{Chunk: 10_000}
	sc, err := Build(ScenarioConfig{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		Seed:       seed,
	}, probe.Program())
	if err != nil {
		return IntrinsicPoint{}, err
	}
	horizon := int64(2_000_000_000) // 2 s
	if mode == Full {
		horizon = 10_000_000_000
	}
	sc.M.Start()
	sc.M.Run(horizon)
	sc.M.Stop()
	return IntrinsicPoint{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		MaxDelay:   probe.MaxDelay(),
		Samples:    probe.Delays().Count(),
	}, nil
}

// matrixCell is one (scenario, background, scheduler) cell of the
// Fig. 5/6 matrices, in the fixed row order the paper plots.
type matrixCell struct {
	label  string
	capped bool
	bg     BGKind
	kind   SchedulerKind
}

// matrixCells enumerates the evaluation matrix: capped scenarios with
// Credit/RTDS/Tableau and uncapped with Credit/Credit2/Tableau, each
// against no, I/O-intensive, and CPU-intensive background load.
func matrixCells() []matrixCell {
	var cells []matrixCell
	for _, capped := range []bool{true, false} {
		scheds := CappedSchedulers
		label := "capped"
		if !capped {
			scheds = UncappedSchedulers
			label = "uncapped"
		}
		for _, bg := range []BGKind{BGNone, BGIO, BGCPU} {
			for _, k := range scheds {
				cells = append(cells, matrixCell{label: label, capped: capped, bg: bg, kind: k})
			}
		}
	}
	return cells
}

// Fig5 runs the full intrinsic-latency matrix, fanning the independent
// cells out across the configured worker pool.
func Fig5(mode Mode) (*Result, error) {
	r := &Result{
		Name:   "fig5",
		Title:  "Maximum scheduling delay (redis-cli-style intrinsic latency)",
		Header: []string{"scenario", "background", "scheduler", "max_delay_ms", "samples"},
		Note:   "Paper: Tableau ~10 ms in every capped cell; Credit up to 44 ms capped and 220 ms uncapped with background load.",
	}
	cells := matrixCells()
	pts, err := Collect(len(cells), func(i int) (IntrinsicPoint, error) {
		c := cells[i]
		return RunIntrinsic(c.kind, c.capped, c.bg, mode, 42)
	})
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		r.Rows = append(r.Rows, []string{cells[i].label, string(p.Background), string(p.Scheduler), ms(p.MaxDelay), itoa(p.Samples)})
	}
	return r, nil
}

// PingPoint is one bar pair of Fig. 6.
type PingPoint struct {
	Scheduler  SchedulerKind
	Capped     bool
	Background BGKind
	AvgNs      float64
	MaxNs      int64
	Pings      int64
}

// RunPing reproduces one Fig. 6 cell: randomly spaced pings to the
// vantage VM; average and maximum response latency.
func RunPing(kind SchedulerKind, capped bool, bg BGKind, mode Mode, seed int64) (PingPoint, error) {
	sink := &workload.PingSink{Cost: 5_000}
	sc, err := Build(ScenarioConfig{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		Seed:       seed,
	}, sink.Program())
	if err != nil {
		return PingPoint{}, err
	}
	sink.Bind(sc.Vantage)
	// Paper: 8 threads x 5,000 pings spaced uniformly in [0, 200 ms).
	// The vantage VM must stay nearly idle (pings are sparse) for the
	// schedulers' idle-VM wakeup paths to be exercised; quick mode
	// reduces the count and moderately compresses the spacing.
	threads, count, spacing := 8, 150, int64(20_000_000)
	if mode == Full {
		threads, count, spacing = 8, 1_000, 100_000_000
	}
	sc.M.Start()
	workload.SchedulePings(sc.M, sink, threads, count, spacing, seed)
	horizon := int64(count)*spacing + 500_000_000
	sc.M.Run(horizon)
	sc.M.Stop()
	h := sink.Latencies()
	return PingPoint{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		AvgNs:      h.Mean(),
		MaxNs:      h.Max(),
		Pings:      h.Count(),
	}, nil
}

// Fig6 runs the full ping matrix, fanning the independent cells out
// across the configured worker pool.
func Fig6(mode Mode) (*Result, error) {
	r := &Result{
		Name:   "fig6",
		Title:  "Average and maximum round-trip ping latency",
		Header: []string{"scenario", "background", "scheduler", "avg_ms", "max_ms", "pings"},
		Note:   "Paper: Tableau max <= 10 ms in all capped cells (17x below Credit's ~75 ms I/O-BG tail); Tableau mean higher than dynamic schedulers when capped.",
	}
	cells := matrixCells()
	pts, err := Collect(len(cells), func(i int) (PingPoint, error) {
		c := cells[i]
		return RunPing(c.kind, c.capped, c.bg, mode, 42)
	})
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		r.Rows = append(r.Rows, []string{
			cells[i].label, string(p.Background), string(p.Scheduler),
			msF(p.AvgNs), ms(p.MaxNs), itoa(p.Pings),
		})
	}
	return r, nil
}

// OpCostRow is one row of the Table 1/2 reproduction.
type OpCostRow struct {
	Scheduler SchedulerKind
	// Native measurements: mean host-clock ns of the reimplemented hot
	// paths under the I/O-intensive scenario.
	NativeScheduleNs float64
	NativeWakeupNs   float64
	// Emergent simulated per-op means (base cost + lock-contention
	// queueing), the direct analogue of the paper's xentrace means.
	SimScheduleNs float64
	SimWakeupNs   float64
	SimMigrateNs  float64
	// Uncontended base costs of the contention model.
	ModelScheduleNs int64
	ModelWakeupNs   int64
	ModelMigrateNs  int64
	Ops             int64
}

// RunOverheadTable reproduces Table 1 (16 cores) or Table 2 (48 cores):
// for each scheduler, the I/O-intensive capped/uncapped mix of Sec. 7.2
// runs with the scheduler's hot paths timed natively.
func RunOverheadTable(machineCores int, mode Mode) ([]OpCostRow, error) {
	guest := machineCores - 4 // dom0 keeps 4 cores, as in the paper
	horizon := int64(1_000_000_000)
	if mode == Full {
		horizon = 10_000_000_000
	}
	kinds := []SchedulerKind{Credit, Credit2, RTDS, Tableau}
	return Collect(len(kinds), func(i int) (OpCostRow, error) {
		k := kinds[i]
		capped := k == RTDS // RTDS is capped-only; others measured uncapped like the stress run
		cfg := ScenarioConfig{
			GuestCores:    guest,
			Scheduler:     k,
			Capped:        capped,
			Background:    BGIO,
			Seed:          7,
			OverheadCores: machineCores,
			BGIOScale:     6, // moderate per-op pressure for cost tracing
			Timed:         true,
		}
		sc, err := Build(cfg, bgProgram(cfg.withDefaults(), 0))
		if err != nil {
			return OpCostRow{}, err
		}
		sc.M.Start()
		sc.M.Run(horizon)
		sc.M.Stop()
		ov := sc.M.Ov
		st := sc.M.Stats
		mean := func(total, ops int64) float64 {
			if ops == 0 {
				return 0
			}
			return float64(total) / float64(ops)
		}
		return OpCostRow{
			Scheduler:        k,
			NativeScheduleNs: sc.Timed.Pick.MeanNs(),
			NativeWakeupNs:   sc.Timed.Wake.MeanNs(),
			SimScheduleNs:    mean(st.ScheduleTime, st.ScheduleOps),
			SimWakeupNs:      mean(st.WakeupTime, st.WakeupOps),
			SimMigrateNs:     mean(st.MigrateTime, st.MigrateOps),
			ModelScheduleNs:  ov.Schedule,
			ModelWakeupNs:    ov.Wakeup,
			ModelMigrateNs:   ov.Migrate,
			Ops:              sc.Timed.Pick.Ops,
		}, nil
	})
}

// OverheadResult renders Table 1 or Table 2.
func OverheadResult(machineCores int, mode Mode) (*Result, error) {
	rows, err := RunOverheadTable(machineCores, mode)
	if err != nil {
		return nil, err
	}
	name := "tab1"
	if machineCores > 16 {
		name = "tab2"
	}
	r := &Result{
		Name:  name,
		Title: fmt.Sprintf("Scheduler operation costs on a %d-core machine", machineCores),
		Header: []string{"scheduler", "sim_schedule_us", "sim_wakeup_us", "sim_migrate_us",
			"paper_schedule_us", "paper_wakeup_us", "paper_migrate_us",
			"native_schedule_us", "native_wakeup_us", "picks"},
		Note: "sim_* = emergent simulated per-op means (uncontended base cost + lock-domain queueing; see internal/vmm/overhead.go) — the analogue of the paper's xentrace means in the paper_* columns. native_* = host-clock cost of this repo's reimplemented hot paths (includes a ~0.05-0.1 us timing floor paid equally by all schedulers); the key native signal is RTDS growing with core count while Tableau stays flat.",
	}
	for _, row := range rows {
		cells := []string{
			string(row.Scheduler),
			usF(row.SimScheduleNs),
			usF(row.SimWakeupNs),
			usF(row.SimMigrateNs),
		}
		if paper, ok := vmm.PaperOverheads(string(row.Scheduler), machineCores); ok {
			cells = append(cells, usF(float64(paper[0])), usF(float64(paper[1])), usF(float64(paper[2])))
		} else {
			cells = append(cells, "-", "-", "-")
		}
		cells = append(cells,
			usF(row.NativeScheduleNs),
			usF(row.NativeWakeupNs),
			itoa(row.Ops))
		r.Rows = append(r.Rows, cells)
	}
	return r, nil
}
