package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// Mode scales experiment duration: Quick keeps every run under a few
// seconds of host time for CI; Full approaches the paper's measurement
// volumes.
type Mode int

// Experiment scale modes.
const (
	Quick Mode = iota
	Full
)

// ParseMode converts a string flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("experiments: unknown mode %q (want quick or full)", s)
	}
}

// Result is one reproduced table or figure: a header plus rows, with a
// note tying it back to the paper.
type Result struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Note   string
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Name, r.Title)
	if r.Note != "" {
		fmt.Fprintf(w, "   %s\n", r.Note)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the result to path.
func (r *Result) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(r.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(r.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ms(ns int64) string    { return fmt.Sprintf("%.3f", float64(ns)/1e6) }
func msF(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }
func usF(ns float64) string { return fmt.Sprintf("%.2f", ns/1e3) }
func itoa(v int64) string   { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.1f", v) }
