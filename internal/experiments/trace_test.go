package experiments

import (
	"bytes"
	"testing"

	"tableau/internal/faults"
	"tableau/internal/trace"
)

func encodeTrace(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosTraceGolden is the golden-determinism check for the richest
// traced scenario: a Tableau fail-stop cell with degraded-mode dispatch
// and an emergency replan. The same seed must produce byte-identical
// trace dumps, and the dump must actually contain the fault and the
// replan (otherwise determinism is vacuous).
func TestChaosTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full chaos cells")
	}
	_, tr1, err := ChaosTraced(Tableau, faults.KindPCPUFailStop, Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := ChaosTraced(Tableau, faults.KindPCPUFailStop, Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := encodeTrace(t, tr1), encodeTrace(t, tr2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical seeded chaos runs produced different trace bytes")
	}

	var sawFault, sawReplan, sawSwitch bool
	for _, r := range tr1.Merged() {
		switch r.Type {
		case trace.EvFaultInjected:
			if r.Arg0 == trace.FaultFailStop {
				sawFault = true
			}
		case trace.EvPlannerCall:
			sawReplan = true
		case trace.EvTableSwitch:
			sawSwitch = true
		}
	}
	if !sawFault || !sawReplan || !sawSwitch {
		t.Fatalf("golden trace missing events: failstop=%v replan=%v tableswitch=%v",
			sawFault, sawReplan, sawSwitch)
	}

	d, err := trace.Decode(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Lost() != 0 {
		t.Fatalf("golden trace overflowed its rings (%d lost) — grow TraceRingSize", d.Lost())
	}
}

// TestTracedCellsIdenticalAcrossParallelism fans the same traced cells
// out serially and across 8 workers; every cell's dump must be
// byte-identical either way. Each cell owns its engine and tracer, so
// worker count must be invisible in the bytes.
func TestTracedCellsIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs eight traced cells")
	}
	cells := []struct {
		kind SchedulerKind
		bg   BGKind
	}{
		{Tableau, BGCPU},
		{Tableau, BGIO},
		{Credit, BGCPU},
		{Credit, BGIO},
	}
	runAll := func(workers int) [][]byte {
		old := Parallelism()
		SetParallelism(workers)
		defer SetParallelism(old)
		dumps, err := Collect(len(cells), func(i int) ([]byte, error) {
			_, tr, err := RunIntrinsicTraced(cells[i].kind, true, cells[i].bg, Quick, 42)
			if err != nil {
				return nil, err
			}
			return encodeTrace(t, tr), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return dumps
	}
	serial := runAll(1)
	fanned := runAll(8)
	for i := range cells {
		if !bytes.Equal(serial[i], fanned[i]) {
			t.Errorf("cell %d (%s/%s): trace bytes differ between -parallel 1 and 8",
				i, cells[i].kind, cells[i].bg)
		}
	}
}

// TestTraceAgreesWithProbe checks the trace-derived scheduling latency
// of the vantage VM against the in-guest probe. The two measure the
// same phenomenon through different instruments — the probe sees gaps
// in its own compute cadence, the trace sees runnable→running waits —
// so they agree to within dispatch overheads, not exactly.
func TestTraceAgreesWithProbe(t *testing.T) {
	p, tr, err := RunIntrinsicTraced(Tableau, true, BGCPU, Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	vm := &tr.Metrics().VMs[0]
	traceMax := vm.SchedLatency.Max()
	if vm.SchedLatency.Count() == 0 || traceMax == 0 {
		t.Fatalf("trace recorded no scheduling latency for the vantage VM")
	}
	// A probe gap spans at least one full descheduled interval, so the
	// trace maximum cannot meaningfully exceed the probe maximum; and a
	// probe gap is one wait plus bounded per-dispatch overheads, so the
	// probe maximum cannot exceed the trace maximum by more than 50%.
	slack := traceMax / 2
	if traceMax > p.MaxDelay+slack || p.MaxDelay > traceMax+slack {
		t.Errorf("trace max latency %d ns and probe max delay %d ns diverge beyond 50%%",
			traceMax, p.MaxDelay)
	}
}
