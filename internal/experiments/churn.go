package experiments

import (
	"bytes"
	"fmt"
	"time"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/faults"
	"tableau/internal/planner"
	"tableau/internal/plannersvc"
	"tableau/internal/schedulers/credit"
	"tableau/internal/sim"
	"tableau/internal/table"
	"tableau/internal/trace"
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

// The churnchaos experiment drives an arrival/departure storm through
// the transactional control plane while an intrinsic-latency probe
// watches from a VM that never churns. Six op bursts land inside
// [0.3h, 0.6h): spares arrive, residents depart and return, and a
// deliberately oversized final burst overflows admission so rejections
// and (under a racing fail-stop) rollbacks are exercised, not just the
// happy path. Under Tableau every burst is coalesced by the Controller
// into one planner invocation and one versioned epoch transition;
// under Credit the same guest-side churn happens with no control plane
// at all. Fault cells race the storm with a fail-stop of the probe's
// home core, or with a planner-service outage served by the
// plannersvc breaker + local-fallback path.

// ChurnFaults are the fault cells of the churn matrix. The planner
// outage is Tableau-only (Credit has no planner to lose).
const (
	ChurnFaultNone     = "none"
	ChurnFaultFailStop = faults.KindPCPUFailStop
	ChurnFaultOutage   = faults.KindPlannerOutage
)

// ChurnPoint is one cell of the churn matrix.
type ChurnPoint struct {
	Scheduler SchedulerKind
	Fault     string
	// Arrivals/Departures are the op counts the storm submits.
	Arrivals, Departures int64
	// Control-plane counters (zero for Credit): epochs installed,
	// planner invocations, individually rejected ops, whole-batch
	// rollbacks.
	Transitions, PlannerCalls, Rejected, Rollbacks int64
	// Remote-planning counters for the outage cell: successful remote
	// plans, failed remote attempts, and bursts served by the local
	// fallback planner.
	RemoteOK, RemoteFail, Fallbacks int64
	// WorstBlackout is the longest trace-observed no-service gap that
	// spans an epoch adoption for a VM holding a guarantee in both
	// epochs; WorstBound is the corresponding analytical allowance
	// (B_prev + B_next for that VM). BoundViolations counts gaps that
	// exceeded their allowance — the acceptance gate demands zero.
	WorstBlackout, WorstBound int64
	BoundViolations           int64
	// Probe-observed maximum scheduling delay before/during/after the
	// storm window.
	MaxBefore, MaxDuring, MaxAfter int64
	Samples                        int64
}

// churnWindow is a [start, end) span.
type churnWindow struct{ start, end int64 }

// churnBurst is one storm instant with its coalesced ops.
type churnBurst struct {
	at  int64
	ops []core.Op
}

// churnPlan fixes the storm deterministically for a machine of C guest
// cores and horizon h. Residents occupy (C-1)*4 - 2 slots of 1/4 core
// each (1.5 cores of headroom so a mid-storm fail-stop is recoverable);
// 8 spares follow, the last two oversized at 3/4 core so the final
// burst overflows admission on any host.
type churnPlan struct {
	cores                int
	horizon              int64
	nRes, nSpare         int
	stormStart, stormEnd int64
	failAt               int64
	bursts               []churnBurst
	idle                 [][]churnWindow // per slot: windows the guest blocks
	utils                []planner.Util  // per slot
}

func makeChurnPlan(cores int, horizon int64) *churnPlan {
	p := &churnPlan{
		cores:      cores,
		horizon:    horizon,
		nRes:       (cores-1)*4 - 2,
		nSpare:     8,
		stormStart: 3 * horizon / 10,
		stormEnd:   6 * horizon / 10,
	}
	step := (p.stormEnd - p.stormStart) / 6
	t := func(b int) int64 { return p.stormStart + int64(b)*step }
	p.failAt = (t(2) + t(3)) / 2

	quarter := planner.Util{Num: 1, Den: 4}
	big := planner.Util{Num: 3, Den: 4}
	for i := 0; i < p.nRes; i++ {
		p.utils = append(p.utils, quarter)
	}
	for i := 0; i < p.nSpare; i++ {
		u := quarter
		if i >= p.nSpare-2 {
			u = big
		}
		p.utils = append(p.utils, u)
	}

	sp := func(i int) int { return p.nRes + i }
	act := func(slot int) core.Op { return core.Op{Kind: core.OpActivate, Slot: slot} }
	deact := func(slot int) core.Op { return core.Op{Kind: core.OpDeactivate, Slot: slot} }
	p.bursts = []churnBurst{
		{t(0), []core.Op{act(sp(0)), act(sp(1))}},
		{t(1), []core.Op{deact(1), deact(2)}},
		{t(2), []core.Op{act(sp(2)), act(sp(3))}},
		// A mixed batch: two spares leave and the departed residents
		// return, coalesced into one net-zero transition.
		{t(3), []core.Op{deact(sp(0)), deact(sp(1)), act(1), act(2)}},
		{t(4), []core.Op{deact(3), deact(4)}},
		// The overflow burst: +0.25+0.25+0.75+0.75 cores exceeds any
		// remaining headroom, so the tail of the batch is rejected.
		{t(5), []core.Op{act(sp(4)), act(sp(5)), act(sp(6)), act(sp(7))}},
	}

	// Guest-side lifecycle: a slot blocks while departed (or not yet
	// arrived) and hogs while resident. Identical under every
	// scheduler, so the guest demand is scheduler-independent.
	active := make([]bool, p.nRes+p.nSpare)
	for i := 0; i < p.nRes; i++ {
		active[i] = true
	}
	idleSince := make([]int64, p.nRes+p.nSpare)
	p.idle = make([][]churnWindow, p.nRes+p.nSpare)
	for _, b := range p.bursts {
		for _, op := range b.ops {
			switch op.Kind {
			case core.OpActivate:
				if !active[op.Slot] {
					p.idle[op.Slot] = append(p.idle[op.Slot], churnWindow{idleSince[op.Slot], b.at})
					active[op.Slot] = true
				}
			case core.OpDeactivate:
				if active[op.Slot] {
					active[op.Slot] = false
					idleSince[op.Slot] = b.at
				}
			}
		}
	}
	for slot, a := range active {
		if !a {
			p.idle[slot] = append(p.idle[slot], churnWindow{idleSince[slot], horizon})
		}
	}
	return p
}

func (p *churnPlan) counts() (arrivals, departures int64) {
	for _, b := range p.bursts {
		for _, op := range b.ops {
			switch op.Kind {
			case core.OpActivate:
				arrivals++
			case core.OpDeactivate:
				departures++
			}
		}
	}
	return
}

// lifecycleProgram hogs while the slot is resident and blocks through
// its idle windows.
func lifecycleProgram(idle []churnWindow) vmm.Program {
	return vmm.ProgramFunc(func(m *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		for _, w := range idle {
			if now >= w.start && now < w.end {
				return vmm.Block(w.end - now)
			}
		}
		return vmm.Compute(1_000_000)
	})
}

// RunChurnChaos runs one (scheduler, fault) cell of the churn matrix.
// Zero-overhead dispatch keeps the analytical blackout bounds exact, as
// in the verify harness.
func RunChurnChaos(kind SchedulerKind, fault string, mode Mode, seed int64) (ChurnPoint, error) {
	cores, horizon := 6, int64(1_200_000_000)
	if mode == Full {
		cores, horizon = 12, 5_000_000_000
	}
	p := makeChurnPlan(cores, horizon)
	pt := ChurnPoint{Scheduler: kind, Fault: fault}
	pt.Arrivals, pt.Departures = p.counts()

	const latencyGoal = 20_000_000
	probe := &workload.PhasedProbe{Chunk: 10_000, FaultStart: p.stormStart, FaultEnd: p.stormEnd}

	var sched vmm.Scheduler
	var sys *core.System
	var disp *dispatch.Dispatcher
	var res *planner.Result
	switch kind {
	case Tableau:
		sys = core.NewSystem(cores, planner.Options{}, dispatch.Options{})
		for slot, u := range p.utils {
			if _, err := sys.AddVM(core.VMConfig{
				Name: vmName(slot), Util: u, LatencyGoal: latencyGoal, Capped: true,
			}); err != nil {
				return pt, err
			}
		}
		for i := 0; i < p.nSpare; i++ {
			if err := sys.SetActive(p.nRes+i, false); err != nil {
				return pt, err
			}
		}
		var err error
		disp, res, err = sys.BuildDispatcher()
		if err != nil {
			return pt, err
		}
		sched = disp
	case Credit:
		sched = credit.New(credit.Options{Timeslice: 5_000_000, CapPct: 25})
	default:
		return pt, fmt.Errorf("experiments: churnchaos does not run %q", kind)
	}

	m := vmm.New(sim.New(seed), cores, sched, vmm.NoOverheads())
	var tr *trace.Tracer
	if kind == Tableau {
		tr = trace.New(1 << 16)
		m.SetTracer(tr)
	}
	m.AddVCPU(vmName(0), probe.Program(), 256, true)
	for slot := 1; slot < p.nRes+p.nSpare; slot++ {
		m.AddVCPU(vmName(slot), lifecycleProgram(p.idle[slot]), 256, true)
	}

	// Fail the probe's home core mid-storm: the worst case for a
	// table-driven scheduler, racing the replan pipeline with the storm.
	failCore := 0
	if disp != nil {
		if hc := disp.ActiveTable().VCPUs[0].HomeCore; hc >= 0 {
			failCore = hc
		}
	}
	var inj *faults.Injector
	switch fault {
	case ChurnFaultNone:
	case ChurnFaultFailStop:
		plan := &faults.Plan{Seed: seed, Events: []faults.Event{
			{Kind: faults.KindPCPUFailStop, At: p.failAt, Core: failCore},
		}}
		var err error
		if inj, err = faults.Attach(m, plan); err != nil {
			return pt, err
		}
	case ChurnFaultOutage:
		if kind != Tableau {
			return pt, fmt.Errorf("experiments: planner outage needs a planner (scheduler %q)", kind)
		}
		plan := &faults.Plan{Seed: seed, Events: []faults.Event{
			{Kind: faults.KindPlannerOutage, At: p.stormStart, Duration: p.stormEnd - p.stormStart - horizon/10, Core: -1},
		}}
		var err error
		if inj, err = faults.Attach(m, plan); err != nil {
			return pt, err
		}
	default:
		return pt, fmt.Errorf("experiments: unknown churn fault %q", fault)
	}

	var ctrl *core.Controller
	var transitions []*core.Transition
	if kind == Tableau {
		var err error
		ctrl, err = core.NewController(sys, disp, res)
		if err != nil {
			return pt, err
		}
		if fault == ChurnFaultOutage {
			// The remote-planning path under outage: a breaker on the sim
			// clock gates attempts; while the service is unreachable every
			// failed attempt trips the breaker closer to open, and the
			// storm is served by local fallback planning — arrivals are
			// never turned away just because the planner service is down.
			br := &plannersvc.Breaker{Threshold: 3, Cooldown: 100 * time.Millisecond}
			br.SetClock(func() time.Time { return time.Unix(0, m.Eng.Now()) })
			ctrl.PlanVia = func(specs []planner.VCPUSpec, opts planner.Options) (*planner.Result, error) {
				if br.Allow() {
					if inj.PlannerOutage(m.Eng.Now()) {
						br.RecordFailure()
						pt.RemoteFail++
					} else {
						br.RecordSuccess()
						pt.RemoteOK++
						return planner.Plan(specs, opts)
					}
				}
				pt.Fallbacks++
				return planner.Plan(specs, opts)
			}
		}
		flush := func() {
			if t, _ := ctrl.Flush(); t != nil {
				transitions = append(transitions, t)
			}
		}
		for _, b := range p.bursts {
			burst := b
			m.Eng.At(burst.at, func(int64) {
				ctrl.SubmitBatch(burst.ops)
				flush()
			})
		}
		if fault == ChurnFaultFailStop {
			// Control-plane detection latency: the emergency replan races
			// whatever storm bursts are already queued.
			m.Eng.At(p.failAt+10_000_000, func(int64) {
				ctrl.Submit(core.Op{Kind: core.OpFailCore, Core: failCore})
				flush()
			})
		}
	}

	m.Start()
	m.Run(horizon)
	m.Stop()
	if tr != nil {
		tr.FlushResidency(m.Now())
	}

	pt.MaxBefore = probe.MaxBefore()
	pt.MaxDuring = probe.MaxDuring()
	pt.MaxAfter = probe.MaxAfter()
	pt.Samples = probe.Samples()

	if ctrl != nil {
		st := ctrl.ControllerStats()
		pt.Transitions = st.Transitions
		pt.PlannerCalls = st.PlannerCalls
		pt.Rejected = st.Rejections
		pt.Rollbacks = st.Rollbacks
		if err := churnBlackouts(&pt, p, ctrl, transitions, tr, len(m.VCPUs)); err != nil {
			return pt, err
		}
	}
	return pt, nil
}

// churnBlackouts derives the per-transition blackout metric from the
// trace: for every pair of consecutive enacted epochs and every slot
// holding a guarantee in both, the longest no-service gap that spans
// the newer epoch's adoption window must not exceed B_prev + B_next —
// the adoption happens at an old-cycle boundary and the new table
// resumes at an arbitrary phase, so the two bounds add. Gaps inside the
// fail-stop detection-and-recovery window are excluded: that blackout
// is charged to the fault, not to the transition protocol.
func churnBlackouts(pt *ChurnPoint, p *churnPlan, ctrl *core.Controller, transitions []*core.Transition, tr *trace.Tracer, nv int) error {
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		return err
	}
	dump, err := trace.Decode(&buf)
	if err != nil {
		return err
	}
	if lost := dump.Lost(); lost != 0 {
		return fmt.Errorf("experiments: churnchaos trace lost %d records — grow the ring", lost)
	}
	recs := dump.Merged()

	type adoptWindow struct{ first, last int64 }
	adopt := make(map[uint64]adoptWindow)
	for i := range recs {
		r := &recs[i]
		if r.Type != trace.EvTableSwitch {
			continue
		}
		gen := uint64(r.Arg0)
		w, ok := adopt[gen]
		if !ok {
			w = adoptWindow{r.Time, r.Time}
		}
		if r.Time < w.first {
			w.first = r.Time
		}
		if r.Time > w.last {
			w.last = r.Time
		}
		adopt[gen] = w
	}

	hist := ctrl.History()
	type enacted struct {
		win      adoptWindow
		blackout map[int]int64
	}
	bmap := func(gs []table.Guarantee) map[int]int64 {
		m := make(map[int]int64, len(gs))
		for _, g := range gs {
			m[g.VCPU] = g.MaxBlackout
		}
		return m
	}
	var epochs []enacted
	if len(hist) > 0 {
		epochs = append(epochs, enacted{blackout: bmap(hist[0].Guarantees)})
		for _, ep := range hist[1:] {
			if w, ok := adopt[ep.Version]; ok {
				epochs = append(epochs, enacted{w, bmap(ep.Guarantees)})
			}
		}
	}

	// Mask the fail-stop recovery: from the failure until the emergency
	// epoch finished adopting (or forever, if it never did).
	mask := churnWindow{-1, -1}
	if pt.Fault == ChurnFaultFailStop {
		mask = churnWindow{p.failAt, p.horizon}
		for _, t := range transitions {
			if !t.Emergency || t.Version == 0 {
				continue
			}
			if w, ok := adopt[t.Version]; ok {
				mask.end = w.last
			}
		}
	}

	// Running intervals per vCPU, then gap scan per transition.
	runs := make([][]churnWindow, nv)
	open := make([]int64, nv)
	for v := range open {
		open[v] = -1
	}
	for i := range recs {
		r := &recs[i]
		if r.Type != trace.EvRunstateChange {
			continue
		}
		v := int(r.VCPU)
		if v < 0 || v >= nv {
			continue
		}
		switch {
		case r.Arg1 == trace.StateRunning:
			if open[v] < 0 {
				open[v] = r.Time
			}
		case r.Arg0 == trace.StateRunning:
			if open[v] >= 0 {
				runs[v] = append(runs[v], churnWindow{open[v], r.Time})
				open[v] = -1
			}
		}
	}
	for v := range open {
		if open[v] >= 0 {
			runs[v] = append(runs[v], churnWindow{open[v], p.horizon})
		}
	}
	gapsOf := func(ivs []churnWindow) []churnWindow {
		var gaps []churnWindow
		prev := int64(0)
		for _, iv := range ivs {
			if iv.start > prev {
				gaps = append(gaps, churnWindow{prev, iv.start})
			}
			if iv.end > prev {
				prev = iv.end
			}
		}
		if prev < p.horizon {
			gaps = append(gaps, churnWindow{prev, p.horizon})
		}
		return gaps
	}

	for k := 0; k+1 < len(epochs); k++ {
		cur, next := &epochs[k], &epochs[k+1]
		for slot, bNext := range next.blackout {
			bCur, held := cur.blackout[slot]
			if !held || slot >= nv {
				continue
			}
			allowed := bCur + bNext
			for _, g := range gapsOf(runs[slot]) {
				if g.end <= next.win.first || g.start > next.win.last {
					continue // does not span this adoption
				}
				if mask.start >= 0 && g.end > mask.start && g.start <= mask.end {
					continue
				}
				if g.end-g.start > pt.WorstBlackout {
					pt.WorstBlackout = g.end - g.start
					pt.WorstBound = allowed
				}
				if g.end-g.start > allowed {
					pt.BoundViolations++
				}
			}
		}
	}
	return nil
}

// ChurnChaos runs the full churn matrix and renders it.
func ChurnChaos(mode Mode) (*Result, error) {
	r := &Result{
		Name:   "churnchaos",
		Title:  "Control-plane churn storms: Tableau transactional replan pipeline vs Credit (probe delay + per-transition blackout)",
		Header: []string{"scheduler", "fault", "arrivals", "departures", "transitions", "planner_calls", "rejected", "rollbacks", "remote_ok", "remote_fail", "fallbacks", "worst_blackout_ms", "worst_bound_ms", "bound_violations", "probe_before_ms", "probe_during_ms", "probe_after_ms", "samples"},
		Note:   "Storm window = [0.3h, 0.6h), 6 coalesced bursts; final burst deliberately overflows admission. Fail-stop kills the probe's home core mid-storm (blackout inside the detection window is charged to the fault, not the protocol); planner-outage exercises the breaker + local-fallback path on the sim clock. Zero-overhead dispatch keeps blackout bounds exact; bound_violations must be 0.",
	}
	type cell struct {
		kind  SchedulerKind
		fault string
	}
	cells := []cell{
		{Tableau, ChurnFaultNone},
		{Tableau, ChurnFaultFailStop},
		{Tableau, ChurnFaultOutage},
		{Credit, ChurnFaultNone},
		{Credit, ChurnFaultFailStop},
	}
	pts, err := Collect(len(cells), func(i int) (ChurnPoint, error) {
		return RunChurnChaos(cells[i].kind, cells[i].fault, mode, 42)
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			string(p.Scheduler), p.Fault,
			itoa(p.Arrivals), itoa(p.Departures),
			itoa(p.Transitions), itoa(p.PlannerCalls), itoa(p.Rejected), itoa(p.Rollbacks),
			itoa(p.RemoteOK), itoa(p.RemoteFail), itoa(p.Fallbacks),
			ms(p.WorstBlackout), ms(p.WorstBound), itoa(p.BoundViolations),
			ms(p.MaxBefore), ms(p.MaxDuring), ms(p.MaxAfter), itoa(p.Samples),
		})
	}
	return r, nil
}
