package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// churnCSV renders a churnchaos run to CSV bytes at the given
// parallelism, restoring the previous setting afterwards.
func churnCSV(t *testing.T, parallel int) ([]byte, *Result) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(parallel)
	defer SetParallelism(prev)

	r, err := ChurnChaos(Quick)
	if err != nil {
		t.Fatalf("churnchaos at -parallel %d: %v", parallel, err)
	}
	path := filepath.Join(t.TempDir(), "churnchaos.csv")
	if err := r.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, r
}

// TestChurnChaosDeterminism is the churn-short CI gate: the churnchaos
// CSV must be byte-identical across runs and across -parallel settings,
// every Tableau row must keep its worst observed per-transition
// blackout within the analytical bound, and the storm must actually
// exercise admission control (some op is rejected somewhere in the
// matrix).
func TestChurnChaosDeterminism(t *testing.T) {
	seq, r := churnCSV(t, 1)
	par, _ := churnCSV(t, 8)
	if string(seq) != string(par) {
		t.Fatalf("churnchaos CSV differs between -parallel 1 and -parallel 8:\n--- p1 ---\n%s\n--- p8 ---\n%s", seq, par)
	}
	again, _ := churnCSV(t, 1)
	if string(seq) != string(again) {
		t.Fatal("churnchaos CSV differs between two identical runs")
	}

	col := make(map[string]int, len(r.Header))
	for i, h := range r.Header {
		col[h] = i
	}
	num := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col[name]], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	var rejected int64
	for _, row := range r.Rows {
		rejected += num(row, "rejected")
		if row[col["scheduler"]] != string(Tableau) {
			continue
		}
		if v := num(row, "bound_violations"); v != 0 {
			t.Errorf("%s/%s: %d per-transition blackout(s) exceeded B_prev+B_next", row[0], row[1], v)
		}
		if num(row, "transitions") == 0 {
			t.Errorf("%s/%s: storm produced no epoch transitions", row[0], row[1])
		}
		if row[1] == ChurnFaultOutage {
			if num(row, "fallbacks") == 0 {
				t.Error("outage cell never used the local fallback planner")
			}
			if num(row, "remote_fail") == 0 {
				t.Error("outage cell never observed a remote failure")
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no op was rejected anywhere in the matrix — the overflow burst is not overflowing")
	}
}
