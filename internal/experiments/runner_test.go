package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// withParallelism runs fn with the pool fixed at n workers and restores
// the default afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	fn()
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		withParallelism(t, workers, func() {
			const n = 100
			var counts [n]atomic.Int32
			if err := ForEach(n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
				}
			}
		})
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		withParallelism(t, workers, func() {
			err := ForEach(50, func(i int) error {
				switch i {
				case 7:
					return errLow
				case 23:
					return errHigh
				}
				return nil
			})
			if err != errLow {
				t.Errorf("workers=%d: err = %v, want the lowest-indexed cell error", workers, err)
			}
		})
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Error(err)
	}
	ran := false
	if err := ForEach(1, func(int) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("single cell: ran=%v err=%v", ran, err)
	}
}

func TestCollectPreservesSlotOrder(t *testing.T) {
	withParallelism(t, 8, func() {
		out, err := Collect(64, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("out[%d] = %d", i, v)
			}
		}
	})
}

// TestForEachRace drives many concurrent cells that all touch shared
// state correctly (their own slot) plus an intentionally contended
// counter, as a -race exercise of the worker pool itself.
func TestForEachRace(t *testing.T) {
	withParallelism(t, 8, func() {
		var mu sync.Mutex
		total := 0
		slots := make([]int, 500)
		if err := ForEach(len(slots), func(i int) error {
			slots[i] = i
			mu.Lock()
			total++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if total != len(slots) {
			t.Errorf("total = %d", total)
		}
	})
}

func TestParallelismDefaultsToGOMAXPROCS(t *testing.T) {
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Errorf("Parallelism() = %d", Parallelism())
	}
	SetParallelism(-3)
	if Parallelism() < 1 {
		t.Errorf("Parallelism() after negative set = %d", Parallelism())
	}
	SetParallelism(5)
	if Parallelism() != 5 {
		t.Errorf("Parallelism() = %d, want 5", Parallelism())
	}
	SetParallelism(0)
}

// renderRows flattens a result's rows for byte-exact comparison.
func renderRows(r *Result) []byte {
	var buf bytes.Buffer
	for _, row := range r.Rows {
		for _, c := range row {
			buf.WriteString(c)
			buf.WriteByte('\x00')
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestFig5Fig6DeterministicAcrossParallelism is the acceptance test for
// the fan-out port: every cell owns its own independently seeded
// sim.Engine, so the rendered rows must be byte-identical whether the
// matrix runs on 1 worker or 8.
func TestFig5Fig6DeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Fig5+Fig6 matrices")
	}
	run := func(workers int) (fig5, fig6 []byte) {
		t.Helper()
		withParallelism(t, workers, func() {
			r5, err := Fig5(Quick)
			if err != nil {
				t.Fatal(err)
			}
			r6, err := Fig6(Quick)
			if err != nil {
				t.Fatal(err)
			}
			fig5, fig6 = renderRows(r5), renderRows(r6)
		})
		return fig5, fig6
	}
	serial5, serial6 := run(1)
	par5, par6 := run(8)
	if !bytes.Equal(serial5, par5) {
		t.Errorf("fig5 rows differ between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", serial5, par5)
	}
	if !bytes.Equal(serial6, par6) {
		t.Errorf("fig6 rows differ between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s", serial6, par6)
	}
}

// TestWebSweepDeterministicAcrossParallelism covers the Fig. 7 path the
// same way with a single small sweep.
func TestWebSweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("two web sweeps")
	}
	run := func(workers int) []WebPoint {
		var pts []WebPoint
		withParallelism(t, workers, func() {
			var err error
			pts, err = RunWebSweep(true, BGIO, 1*KiB, Quick)
			if err != nil {
				t.Fatal(err)
			}
		})
		return pts
	}
	a, b := run(1), run(8)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("web sweep differs between worker counts:\n%+v\n%+v", a, b)
	}
}
