package experiments

import (
	"fmt"
	"time"

	"tableau/internal/planner"
)

// PlannerPoint is one sample of the Fig. 3/Fig. 4 sweep.
type PlannerPoint struct {
	VMs           int
	LatencyGoalMS int
	GenTime       time.Duration
	TableBytes    int
	Stage         planner.Stage
}

// RunPlannerSweep reproduces the setup behind Figs. 3 and 4: a 48-core
// host with 4 cores for dom0 (44 guest cores), up to 4 VMs per core
// (176 VMs), every VM with the same latency goal drawn from
// {1, 30, 60, 100} ms. For each population size it measures the
// wall-clock table-generation time (Fig. 3) and the size of the
// serialized table (Fig. 4). Tables are generated at the paper's full
// ~102.7 ms length.
func RunPlannerSweep(mode Mode) []PlannerPoint {
	const guestCores = 44
	maxVMs := guestCores * 4
	step := 44
	repeats := 1
	if mode == Full {
		step = 11
		repeats = 5
	}
	goals := []int{1, 30, 60, 100}
	var out []PlannerPoint
	for _, goalMS := range goals {
		for n := step; n <= maxVMs; n += step {
			specs := make([]planner.VCPUSpec, n)
			for i := range specs {
				specs[i] = planner.VCPUSpec{
					Name:        fmt.Sprintf("vm%d", i),
					Util:        planner.Util{Num: 1, Den: 4},
					LatencyGoal: int64(goalMS) * 1_000_000,
					Capped:      true,
				}
			}
			opts := planner.Options{Cores: guestCores, TableLength: planner.MaxHyperperiod}
			var best time.Duration
			var res *planner.Result
			for r := 0; r < repeats; r++ {
				start := time.Now()
				var err error
				res, err = planner.Plan(specs, opts)
				el := time.Since(start)
				if err != nil {
					panic(fmt.Sprintf("planner sweep: %v", err))
				}
				if best == 0 || el < best {
					best = el
				}
			}
			out = append(out, PlannerPoint{
				VMs:           n,
				LatencyGoalMS: goalMS,
				GenTime:       best,
				TableBytes:    res.Table.EncodedSize(),
				Stage:         res.Stage,
			})
		}
	}
	return out
}

// Fig3 renders the table-generation-time series.
func Fig3(mode Mode) *Result {
	pts := RunPlannerSweep(mode)
	r := &Result{
		Name:   "fig3",
		Title:  "Table-generation time vs. number of VMs (44 guest cores)",
		Header: []string{"latency_goal_ms", "vms", "gen_time_ms"},
		Note:   "Paper: all curves below 2 s at 176 VMs; 1 ms goal slowest.",
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.LatencyGoalMS),
			fmt.Sprintf("%d", p.VMs),
			fmt.Sprintf("%.2f", float64(p.GenTime.Microseconds())/1000),
		})
	}
	return r
}

// Fig4 renders the table-size series.
func Fig4(mode Mode) *Result {
	pts := RunPlannerSweep(mode)
	r := &Result{
		Name:   "fig4",
		Title:  "Generated table size vs. number of VMs (44 guest cores)",
		Header: []string{"latency_goal_ms", "vms", "table_kib"},
		Note:   "Paper: all configurations below 1.2 MiB; 1 ms goal largest.",
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.LatencyGoalMS),
			fmt.Sprintf("%d", p.VMs),
			fmt.Sprintf("%.1f", float64(p.TableBytes)/1024),
		})
	}
	return r
}
