package experiments

import (
	"fmt"
	"time"

	"tableau/internal/planner"
)

// PlannerPoint is one sample of the Fig. 3/Fig. 4 sweep.
type PlannerPoint struct {
	VMs           int
	LatencyGoalMS int
	GenTime       time.Duration
	TableBytes    int
	Stage         planner.Stage
	// CacheHit is the time a repeat request for the same (specs,
	// options) input takes once the Sec. 7.1 table cache holds the
	// result — the cost a provider pays for a commonly reused
	// configuration instead of GenTime.
	CacheHit time.Duration
}

// sweepSpecs builds the population for one sweep point: n identical
// 25%-utilization VMs with the given latency goal.
func sweepSpecs(n, goalMS int) []planner.VCPUSpec {
	specs := make([]planner.VCPUSpec, n)
	for i := range specs {
		specs[i] = planner.VCPUSpec{
			Name:        fmt.Sprintf("vm%d", i),
			Util:        planner.Util{Num: 1, Den: 4},
			LatencyGoal: int64(goalMS) * 1_000_000,
			Capped:      true,
		}
	}
	return specs
}

// RunPlannerSweep reproduces the setup behind Figs. 3 and 4: a 48-core
// host with 4 cores for dom0 (44 guest cores), up to 4 VMs per core
// (176 VMs), every VM with the same latency goal drawn from
// {1, 30, 60, 100} ms. For each population size it measures the
// wall-clock table-generation time (Fig. 3) and the size of the
// serialized table (Fig. 4). Tables are generated at the paper's full
// ~102.7 ms length. The points are independent and fan out across the
// worker pool; each point still times planner.Plan directly (repeat
// trials keep the minimum), then publishes its result to the shared
// PlannerCache and times the cache hit a repeat request would see.
//
// Note that GenTime is host wall-clock: running the sweep at high
// parallelism contends for cores and can inflate the measured times.
// Figure-grade timing runs should use -parallel 1.
func RunPlannerSweep(mode Mode) []PlannerPoint {
	const guestCores = 44
	maxVMs := guestCores * 4
	step := 44
	repeats := 1
	if mode == Full {
		step = 11
		repeats = 5
	}
	goals := []int{1, 30, 60, 100}
	type cell struct{ goalMS, n int }
	var cells []cell
	for _, goalMS := range goals {
		for n := step; n <= maxVMs; n += step {
			cells = append(cells, cell{goalMS, n})
		}
	}
	out, err := Collect(len(cells), func(i int) (PlannerPoint, error) {
		c := cells[i]
		specs := sweepSpecs(c.n, c.goalMS)
		opts := planner.Options{Cores: guestCores, TableLength: planner.MaxHyperperiod}
		var best time.Duration
		var res *planner.Result
		for r := 0; r < repeats; r++ {
			start := time.Now()
			var err error
			res, err = planner.Plan(specs, opts)
			el := time.Since(start)
			if err != nil {
				return PlannerPoint{}, fmt.Errorf("planner sweep (%d VMs, %d ms): %w", c.n, c.goalMS, err)
			}
			if best == 0 || el < best {
				best = el
			}
		}
		PlannerCache.Add(specs, opts, res)
		hitStart := time.Now()
		if _, err := PlannerCache.Plan(specs, opts); err != nil {
			return PlannerPoint{}, err
		}
		return PlannerPoint{
			VMs:           c.n,
			LatencyGoalMS: c.goalMS,
			GenTime:       best,
			TableBytes:    res.Table.EncodedSize(),
			Stage:         res.Stage,
			CacheHit:      time.Since(hitStart),
		}, nil
	})
	if err != nil {
		// The sweep inputs are statically admissible; failure to plan
		// them is a bug, exactly as before the fan-out port.
		panic(err)
	}
	return out
}

// Fig3From renders the table-generation-time series from sweep points.
func Fig3From(pts []PlannerPoint) *Result {
	r := &Result{
		Name:   "fig3",
		Title:  "Table-generation time vs. number of VMs (44 guest cores)",
		Header: []string{"latency_goal_ms", "vms", "gen_time_ms"},
		Note:   "Paper: all curves below 2 s at 176 VMs; 1 ms goal slowest.",
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.LatencyGoalMS),
			fmt.Sprintf("%d", p.VMs),
			fmt.Sprintf("%.2f", float64(p.GenTime.Microseconds())/1000),
		})
	}
	return r
}

// Fig4From renders the table-size series from sweep points.
func Fig4From(pts []PlannerPoint) *Result {
	r := &Result{
		Name:   "fig4",
		Title:  "Generated table size vs. number of VMs (44 guest cores)",
		Header: []string{"latency_goal_ms", "vms", "table_kib"},
		Note:   "Paper: all configurations below 1.2 MiB; 1 ms goal largest.",
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.LatencyGoalMS),
			fmt.Sprintf("%d", p.VMs),
			fmt.Sprintf("%.1f", float64(p.TableBytes)/1024),
		})
	}
	return r
}

// Fig3 runs the sweep and renders the table-generation-time series.
// Callers that also need Fig. 4 should run RunPlannerSweep once and use
// Fig3From/Fig4From so the sweep is not repeated.
func Fig3(mode Mode) *Result { return Fig3From(RunPlannerSweep(mode)) }

// Fig4 runs the sweep and renders the table-size series. See Fig3.
func Fig4(mode Mode) *Result { return Fig4From(RunPlannerSweep(mode)) }
