package experiments

import (
	"fmt"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/stats"
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

// The tenancy experiment measures mixed-criticality serving on one
// dense host: latency-sensitive (LS) and best-effort (BE) guests run
// identical open-loop bursty SLO servers, so every per-class latency
// difference is the scheduler's doing — the class-aware second level
// hands slack to LS wakeups before BE, and under an LS admission surge
// the controller sheds BE guests (committed, journaled deactivations)
// rather than refuse the arrival. The steady cell has no surge and
// shows per-class burst absorption; the surge cell activates spare LS
// guests past the admission edge mid-run and shows BE paying for LS
// continuity.

// Tenancy cells.
const (
	TenancyCellSteady = "steady"
	TenancyCellSurge  = "surge"
)

// TenancyPoint is one (cell, class) row of the tenancy experiment: the
// aggregated per-request latency distribution of every server of that
// class, with SLO attainment and the sheds the cell committed.
type TenancyPoint struct {
	Cell  string
	Class planner.Class
	// VMs is the number of guests of this class registered in the cell
	// (spares included).
	VMs int
	// Requests counts scheduled open-loop arrivals; Completed the ones
	// served by the horizon; SLOMet the completions within the SLO. A
	// shed BE guest stops serving, so its tail shows up as Requests -
	// Completed, not as censored latency.
	Requests, Completed, SLOMet int64
	// P50/P90/P99/Max summarize the per-class latency CDF in ns.
	P50, P90, P99, Max int64
	// Sheds counts committed Shed deactivations (BE guests displaced by
	// LS admission); zero in the steady cell.
	Sheds int64
}

// RunTenancy runs one cell of the tenancy experiment and returns the
// LS row followed by the BE row.
func RunTenancy(cell string, mode Mode, seed int64) ([]TenancyPoint, error) {
	scale := 1
	horizon := int64(1_000_000_000)
	if mode == Full {
		scale = 2
		horizon = 4_000_000_000
	}
	cores := 2 * scale
	nLS, nBE, nSpare := 2*scale, 2*scale, scale
	surgeAt := horizon / 2
	const latencyGoal = 20_000_000

	// Population: LS guests reserve 1/2 core, BE guests 1/4, spares are
	// LS at 3/4. Active sum = 1.5*scale on 2*scale cores, so the table
	// leaves slack for the second level; the surge adds 0.75*scale,
	// overflowing admission by 0.25*scale — exactly `scale` BE sheds.
	type guest struct {
		class planner.Class
		util  planner.Util
		spare bool
	}
	var guests []guest
	for i := 0; i < nLS; i++ {
		guests = append(guests, guest{planner.LS, planner.Util{Num: 1, Den: 2}, false})
	}
	for i := 0; i < nBE; i++ {
		guests = append(guests, guest{planner.BE, planner.Util{Num: 1, Den: 4}, false})
	}
	for i := 0; i < nSpare; i++ {
		guests = append(guests, guest{planner.LS, planner.Util{Num: 3, Den: 4}, true})
	}

	sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
	for slot, g := range guests {
		if _, err := sys.AddVM(core.VMConfig{
			Name: fmt.Sprintf("t%d", slot), Util: g.util, LatencyGoal: latencyGoal, Class: g.class,
		}); err != nil {
			return nil, err
		}
		if g.spare {
			if err := sys.SetActive(slot, false); err != nil {
				return nil, err
			}
		}
	}
	disp, res, err := sys.BuildDispatcher()
	if err != nil {
		return nil, err
	}
	m := vmm.New(sim.New(seed), cores, disp, vmm.NoOverheads())

	servers := make([]*workload.SLOServer, len(guests))
	for slot := range guests {
		srv := &workload.SLOServer{Cost: 20_000, SLO: 10_000_000}
		servers[slot] = srv
		// Uncapped: the reservation is the guarantee, bursts ride the
		// second level — the layer whose class policy is under test.
		v := m.AddVCPU(fmt.Sprintf("t%d", slot), srv.Program(), 256, false)
		srv.Bind(v)
	}
	be := make([]bool, len(guests))
	for slot, g := range guests {
		be[slot] = g.class == planner.BE
	}
	disp.SetBestEffort(be)

	// Identical bursty open-loop streams per guest: modest base rate
	// with heavy bursts, seeded per slot so guests stay out of lockstep.
	// Spares start serving only after the surge activates them.
	requests := make([]int64, len(guests))
	for slot, g := range guests {
		start, span := int64(0), horizon
		if g.spare {
			if cell != TenancyCellSurge {
				continue
			}
			start, span = surgeAt, horizon-surgeAt
		}
		requests[slot] = int64(workload.ScheduleBursts(
			m, servers[slot], start, span,
			2_000, 20_000, 20_000_000, 10_000_000,
			seed*1000+int64(slot)))
	}

	var surgeTr *core.Transition
	if cell == TenancyCellSurge {
		ctrl, err := core.NewController(sys, disp, res)
		if err != nil {
			return nil, err
		}
		m.Eng.At(surgeAt, func(int64) {
			for slot, g := range guests {
				if g.spare {
					ctrl.Submit(core.Op{Kind: core.OpActivate, Slot: slot})
				}
			}
			surgeTr, _ = ctrl.Flush()
		})
	}

	m.Start()
	m.Run(horizon)
	m.Stop()

	pts := []TenancyPoint{
		{Cell: cell, Class: planner.LS},
		{Cell: cell, Class: planner.BE},
	}
	hists := []*stats.Histogram{stats.NewHistogram(), stats.NewHistogram()}
	for slot, g := range guests {
		k := 0
		if g.class == planner.BE {
			k = 1
		}
		pts[k].VMs++
		pts[k].Requests += requests[slot]
		pts[k].Completed += servers[slot].Completed()
		pts[k].SLOMet += servers[slot].SLOMet()
		hists[k].Merge(servers[slot].Latencies())
	}
	for k := range pts {
		pts[k].P50 = hists[k].Quantile(0.50)
		pts[k].P90 = hists[k].Quantile(0.90)
		pts[k].P99 = hists[k].P99()
		pts[k].Max = hists[k].Max()
	}
	if surgeTr != nil {
		for _, op := range surgeTr.Committed {
			if op.Shed {
				pts[0].Sheds++
				pts[1].Sheds++
			}
		}
	}
	return pts, nil
}

// Tenancy runs both tenancy cells and renders the per-class rows.
func Tenancy(mode Mode) (*Result, error) {
	cells := []string{TenancyCellSteady, TenancyCellSurge}
	pts, err := Collect(len(cells), func(i int) ([]TenancyPoint, error) {
		return RunTenancy(cells[i], mode, 42)
	})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Name:   "tenancy",
		Title:  "Mixed-criticality serving: per-class SLO attainment and latency CDF under bursty open-loop load",
		Header: []string{"cell", "class", "vms", "requests", "completed", "slo_met", "slo_pct", "p50_ms", "p90_ms", "p99_ms", "max_ms", "sheds"},
		Note: "Identical bursty SLO servers per guest; only the tenancy class differs. The surge cell activates spare LS guests past the admission edge mid-run: " +
			"the controller sheds BE guests (committed Shed deactivations) to admit them, so BE shows Requests > Completed while LS keeps serving. SLO = 10 ms per request, coordinated-omission correct.",
	}
	for _, cellPts := range pts {
		for _, p := range cellPts {
			pct := "-"
			if p.Completed > 0 {
				pct = fmt.Sprintf("%.1f%%", 100*float64(p.SLOMet)/float64(p.Completed))
			}
			r.Rows = append(r.Rows, []string{
				p.Cell, p.Class.String(), itoa(int64(p.VMs)),
				itoa(p.Requests), itoa(p.Completed), itoa(p.SLOMet), pct,
				ms(p.P50), ms(p.P90), ms(p.P99), ms(p.Max), itoa(p.Sheds),
			})
		}
	}
	return r, nil
}
