package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"tableau/internal/trace"
	"tableau/internal/workload"
)

// Trace-backed experiments: the same scenarios as Fig. 5 and the chaos
// matrix, but with the binary tracer attached, so the reported numbers
// are derived from the record stream rather than from probes embedded
// in the guest. Because trace.Analyze replays the identical observe
// path over a decoded dump, `tableau-trace summarize` on the dumped
// file reproduces these rows exactly.

// TraceRingSize is the per-pCPU ring capacity traced experiments use:
// large enough that a quick-mode run never overwrites (lost records
// would make offline summaries partial).
const TraceRingSize = 1 << 18

// RunIntrinsicTraced is RunIntrinsic with the binary tracer attached;
// it returns the tracer alongside the probe's numbers.
func RunIntrinsicTraced(kind SchedulerKind, capped bool, bg BGKind, mode Mode, seed int64) (IntrinsicPoint, *trace.Tracer, error) {
	probe := &workload.Probe{Chunk: 10_000}
	sc, err := Build(ScenarioConfig{
		Scheduler:    kind,
		Capped:       capped,
		Background:   bg,
		Seed:         seed,
		TraceRecords: TraceRingSize,
	}, probe.Program())
	if err != nil {
		return IntrinsicPoint{}, nil, err
	}
	horizon := int64(2_000_000_000)
	if mode == Full {
		horizon = 10_000_000_000
	}
	sc.M.Start()
	sc.M.Run(horizon)
	sc.M.Stop()
	sc.Tracer.FlushResidency(sc.M.Now())
	return IntrinsicPoint{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		MaxDelay:   probe.MaxDelay(),
		Samples:    probe.Delays().Count(),
	}, sc.Tracer, nil
}

// ChaosTraced runs one chaos cell with the binary tracer attached. The
// Tableau fail-stop cell is the golden-determinism scenario: it
// exercises fault injection, degraded-mode dispatch, and an emergency
// replan, all visible in the trace.
func ChaosTraced(kind SchedulerKind, fault string, mode Mode, seed int64) (ChaosPoint, *trace.Tracer, error) {
	p, sc, err := runChaos(kind, fault, mode, seed, TraceRingSize)
	if err != nil {
		return ChaosPoint{}, nil, err
	}
	return p, sc.Tracer, nil
}

// fig5TraceCells are the traced latency-CDF cells: the paper's two
// poles under the heaviest background load, capped.
var fig5TraceCells = []SchedulerKind{Tableau, Credit}

// Fig5Trace derives the Fig. 5-style scheduling-latency distribution of
// the vantage VM from the trace instead of the in-guest probe: each
// row reports CDF quantiles of the vCPU's runnable→running wait. When
// traceDir is non-empty the raw dump of each cell is written there as
// fig5trace_<scheduler>.trace for tableau-trace to consume.
func Fig5Trace(mode Mode, traceDir string) (*Result, error) {
	r := &Result{
		Name:   "fig5trace",
		Title:  "Vantage-VM scheduling-latency CDF derived from the binary trace (capped, CPU background)",
		Header: []string{"scheduler", "p50_ms", "p90_ms", "p99_ms", "max_ms", "samples", "probe_max_ms", "records"},
		Note:   "Quantiles come from the trace's runnable-to-running wait histogram, not the guest probe; probe_max_ms is the in-guest Fig. 5 number for cross-checking. tableau-trace summarize on the dumped .trace files reproduces these rows.",
	}
	type cellOut struct {
		point  IntrinsicPoint
		tracer *trace.Tracer
	}
	outs, err := Collect(len(fig5TraceCells), func(i int) (cellOut, error) {
		p, tr, err := RunIntrinsicTraced(fig5TraceCells[i], true, BGCPU, mode, 42)
		return cellOut{p, tr}, err
	})
	if err != nil {
		return nil, err
	}
	for i, out := range outs {
		vm := &out.tracer.Metrics().VMs[0] // vantage VM is vCPU 0
		lat := &vm.SchedLatency
		records := int64(len(out.tracer.Merged()))
		r.Rows = append(r.Rows, []string{
			string(fig5TraceCells[i]),
			ms(lat.Quantile(0.50)), ms(lat.Quantile(0.90)), ms(lat.Quantile(0.99)), ms(lat.Max()),
			itoa(lat.Count()), ms(out.point.MaxDelay), itoa(records),
		})
		if traceDir != "" {
			if err := os.MkdirAll(traceDir, 0o755); err != nil {
				return nil, err
			}
			path := filepath.Join(traceDir, fmt.Sprintf("fig5trace_%s.trace", fig5TraceCells[i]))
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			err = out.tracer.Encode(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}
