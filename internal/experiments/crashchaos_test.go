package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// crashCSV renders a crashchaos run to CSV bytes at the given
// parallelism, restoring the previous setting afterwards.
func crashCSV(t *testing.T, parallel int) ([]byte, *Result) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(parallel)
	defer SetParallelism(prev)

	r, err := CrashChaos(Quick)
	if err != nil {
		t.Fatalf("crashchaos at -parallel %d: %v", parallel, err)
	}
	path := filepath.Join(t.TempDir(), "crashchaos.csv")
	if err := r.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, r
}

// TestCrashChaosDeterminism is the recovery CI gate: the crashchaos
// CSV must be byte-identical across runs and across -parallel
// settings, every row must recover bit-identically onto its expected
// version with zero oracle violations, and the matrix must exercise
// all four crash kinds.
func TestCrashChaosDeterminism(t *testing.T) {
	seq, r := crashCSV(t, 1)
	par, _ := crashCSV(t, 8)
	if string(seq) != string(par) {
		t.Fatal("crashchaos CSV differs between -parallel 1 and -parallel 8")
	}
	again, _ := crashCSV(t, 1)
	if string(seq) != string(again) {
		t.Fatal("crashchaos CSV differs between two identical runs")
	}

	if len(r.Rows) < 200 {
		t.Fatalf("matrix has %d storms, want >= 200", len(r.Rows))
	}
	col := make(map[string]int, len(r.Header))
	for i, h := range r.Header {
		col[h] = i
	}
	num := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col[name]], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	kinds := map[string]int{}
	damaged := 0
	for _, row := range r.Rows {
		kinds[row[col["kind"]]]++
		if v := num(row, "violations"); v != 0 {
			t.Errorf("seed %s (%s): %d recovery violations", row[0], row[col["kind"]], v)
		}
		if row[col["bit_identical"]] != "1" {
			t.Errorf("seed %s: recovered epoch not bit-identical to shadow", row[0])
		}
		if got, want := num(row, "recovered_version"), num(row, "expected_version"); got != want {
			t.Errorf("seed %s: recovered version %d, want %d", row[0], got, want)
		}
		if num(row, "seam_version") <= num(row, "recovered_version") {
			t.Errorf("seed %s: seam flush did not advance past the recovered epoch", row[0])
		}
		if num(row, "truncated_bytes") > 0 {
			damaged++
			if row[col["replanned"]] != "1" {
				t.Errorf("seed %s: damaged tail without an emergency replan", row[0])
			}
		}
	}
	if len(kinds) != 4 {
		t.Fatalf("matrix drew %d crash kinds, want all 4: %v", len(kinds), kinds)
	}
	if damaged == 0 {
		t.Fatal("no storm damaged the journal tail — torn/bit-flip kinds are not biting")
	}
}
