package experiments

import (
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

// Background workload parameters. The I/O loop mimics the stress
// benchmark's I/O workers: short compute bursts separated by blocking
// I/O, so the VM scheduler is invoked thousands of times per second per
// VM — the paper's "high-density workloads that frequently trigger the
// VM scheduler". With no benchmark running, VMs still wake occasionally
// for guest system processes (Sec. 7.3 observes Credit's capped stalls
// even without background load), modelled as sparse housekeeping
// bursts.
const (
	bgIOCompute = 50_000      // 50 µs of work per I/O cycle
	bgIOWait    = 50_000      // 50 µs blocked per cycle
	bgJitterPct = 60          // decorrelate the VMs
	noiseSleep  = 100_000_000 // housekeeping every ~100 ms
	noiseWork   = 200_000     // ~200 µs of system processes
)

// bgProgram returns the background program for VM i under cfg.
func bgProgram(cfg ScenarioConfig, i int) vmm.Program {
	seed := cfg.Seed*1_000_003 + int64(i)
	scale := cfg.BGIOScale
	if scale <= 0 {
		scale = 1
	}
	switch cfg.Background {
	case BGIO:
		return workload.StressIO(bgIOCompute*scale, bgIOWait*scale, bgJitterPct, seed)
	case BGCPU:
		return workload.CPUHog()
	default:
		// Idle guests: periodic housekeeping only.
		return workload.StressIO(noiseWork, noiseSleep, bgJitterPct, seed)
	}
}
