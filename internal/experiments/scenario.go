// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 7). Each driver assembles the paper's scenario on
// the simulated machine — 4 single-vCPU VMs per guest core, a vantage
// VM, and a background workload — runs it under the chosen scheduler,
// and emits the same rows/series the paper plots. See EXPERIMENTS.md
// for the paper-vs-measured comparison.
package experiments

import (
	"fmt"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/schedulers/credit"
	"tableau/internal/schedulers/credit2"
	"tableau/internal/schedulers/rtds"
	"tableau/internal/sim"
	"tableau/internal/trace"
	"tableau/internal/traceutil"
	"tableau/internal/vmm"
)

// SchedulerKind names one of the four evaluated schedulers.
type SchedulerKind string

// The schedulers of the evaluation.
const (
	Credit  SchedulerKind = "credit"
	Credit2 SchedulerKind = "credit2"
	RTDS    SchedulerKind = "rtds"
	Tableau SchedulerKind = "tableau"
)

// BGKind names a background workload.
type BGKind string

// The background workloads of Sec. 7.3/7.4.
const (
	BGNone BGKind = "none"
	BGIO   BGKind = "io"
	BGCPU  BGKind = "cpu"
)

// PlannerCache memoizes Tableau table generation across every
// experiment driver in this process — the paper's Sec. 7.1 observation
// that providers can "centrally cache tables for common configurations
// that are frequently reused". The evaluation grid rebuilds the same
// 48-VM population for every (background, rate, seed) cell, so all but
// the first build per (specs, options) key are cache hits. The cache is
// concurrency-safe, so parallel cells share it directly; results are
// deterministic either way because planning is deterministic.
var PlannerCache = planner.NewCache(256)

// CappedSchedulers are compared in capped scenarios (Credit2 has no cap
// support, paper Sec. 7.2).
var CappedSchedulers = []SchedulerKind{Credit, RTDS, Tableau}

// UncappedSchedulers are compared in uncapped scenarios (RTDS servers
// are inherently capped).
var UncappedSchedulers = []SchedulerKind{Credit, Credit2, Tableau}

// ScenarioConfig describes one evaluation setup (paper Sec. 7.2).
type ScenarioConfig struct {
	// GuestCores is the number of cores available to guests (the paper
	// dedicates 4 of 16 to dom0, leaving 12). Default 12.
	GuestCores int
	// VMsPerCore is the consolidation density. Default 4.
	VMsPerCore int
	// Population overrides the VM count (default GuestCores*VMsPerCore).
	// Each VM keeps the 1/VMsPerCore fair share, so a smaller population
	// leaves reserved-utilization slack — the chaos experiment uses
	// (GuestCores-1)*VMsPerCore so an emergency replan onto the
	// survivors of one core failure is admissible.
	Population int
	// Scheduler selects the VM scheduler.
	Scheduler SchedulerKind
	// Capped selects the capped or uncapped scenario.
	Capped bool
	// Background selects the background workload run by non-vantage VMs.
	Background BGKind
	// LatencyGoal is the vCPU latency goal (Tableau) and drives the
	// matched RTDS parameters. Default 20 ms.
	LatencyGoal int64
	// Seed makes the run reproducible.
	Seed int64
	// BGIOScale stretches the I/O background's compute/block cycle by
	// this factor (1 = the default 50 µs + 50 µs loop). The overhead
	// tables use a gentler cycle so per-op costs are measured at
	// moderate lock pressure, like the paper's tracing runs.
	BGIOScale int64
	// NoOverheads disables the calibrated per-op overhead model (used
	// by unit tests that reason about pure scheduling behaviour).
	NoOverheads bool
	// OverheadCores sets the machine size used to look up calibrated
	// overheads; defaults to GuestCores+4 (the dom0 cores exist on the
	// machine even though guests do not run there).
	OverheadCores int
	// Timed wraps the scheduler to measure native hot-path costs.
	Timed bool
	// Trace wraps the scheduler to record every dispatch decision.
	Trace bool
	// TraceRecords > 0 attaches a binary tracer (internal/trace) with
	// per-pCPU rings of that many records. Unlike Trace/Timed this does
	// not wrap the scheduler: the machine and dispatcher emit records
	// directly, so the hot path stays allocation-free.
	TraceRecords int
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.GuestCores == 0 {
		c.GuestCores = 12
	}
	if c.VMsPerCore == 0 {
		c.VMsPerCore = 4
	}
	if c.LatencyGoal == 0 {
		c.LatencyGoal = 20_000_000
	}
	if c.OverheadCores == 0 {
		c.OverheadCores = c.GuestCores + 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Scenario is an assembled machine ready to run: the vantage VM is
// VCPUs[0] and runs the caller-supplied program; all other VMs run the
// configured background workload.
type Scenario struct {
	Cfg        ScenarioConfig
	M          *vmm.Machine
	Vantage    *vmm.VCPU
	Sys        *core.System              // non-nil when Scheduler == Tableau
	Dispatcher *dispatch.Dispatcher      // non-nil when Scheduler == Tableau
	Timed      *traceutil.TimedScheduler // non-nil when Cfg.Timed
	Recorder   *traceutil.Recorder       // non-nil when Cfg.Trace
	Tracer     *trace.Tracer             // non-nil when Cfg.TraceRecords > 0
}

// Build assembles the scenario. vantageProg runs in the vantage VM;
// bgProg(i, seed) builds the i-th background VM's program (pass nil to
// use the configured Background kind).
func Build(cfg ScenarioConfig, vantageProg vmm.Program) (*Scenario, error) {
	cfg = cfg.withDefaults()
	n := cfg.GuestCores * cfg.VMsPerCore
	// Per-VM share is always 1/VMsPerCore (computed as the full-density
	// fair share so the value is bit-identical to the historical one); a
	// Population override changes the VM count, not the per-VM share.
	u := planner.FairShare(cfg.GuestCores, n)
	if cfg.Population > 0 {
		n = cfg.Population
	}
	if n < 1 {
		return nil, fmt.Errorf("experiments: empty scenario")
	}

	var sched vmm.Scheduler
	var disp *dispatch.Dispatcher
	var sys *core.System
	switch cfg.Scheduler {
	case Credit:
		sched = credit.New(credit.Options{
			Timeslice: 5_000_000, // documented best practice (Sec. 7.2)
			CapPct:    int(u.PPM() / 10_000),
		})
	case Credit2:
		if cfg.Capped {
			return nil, fmt.Errorf("experiments: Credit2 does not support caps (paper Sec. 7.2)")
		}
		sched = credit2.New(credit2.Options{CoresPerRunqueue: 8})
	case RTDS:
		if !cfg.Capped {
			return nil, fmt.Errorf("experiments: RTDS servers are inherently capped; uncapped scenarios use Credit2")
		}
		// Configured to match Tableau's parameters (paper Sec. 7.2).
		period, ok := planner.PickPeriod(u, cfg.LatencyGoal, planner.CandidatePeriods())
		if !ok {
			return nil, fmt.Errorf("experiments: latency goal %d unenforceable", cfg.LatencyGoal)
		}
		sched = rtds.New(rtds.Options{Default: rtds.Params{Budget: u.Cost(period), Period: period}})
	case Tableau:
		sys = core.NewSystem(cfg.GuestCores, planner.Options{}, dispatch.Options{})
		sys.Cache = PlannerCache
		for i := 0; i < n; i++ {
			if _, err := sys.AddVM(core.VMConfig{
				Name:        vmName(i),
				Util:        u,
				LatencyGoal: cfg.LatencyGoal,
				Capped:      cfg.Capped,
			}); err != nil {
				return nil, err
			}
		}
		d, _, err := sys.BuildDispatcher()
		if err != nil {
			return nil, err
		}
		disp = d
		sched = d
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", cfg.Scheduler)
	}

	sc := &Scenario{Cfg: cfg, Sys: sys, Dispatcher: disp}
	if cfg.Timed {
		sc.Timed = traceutil.NewTimed(sched)
		sched = sc.Timed
	}
	if cfg.Trace {
		sc.Recorder = traceutil.NewRecorder(sched)
		sched = sc.Recorder
	}

	ov := vmm.Overheads(string(cfg.Scheduler), cfg.OverheadCores)
	if cfg.NoOverheads {
		ov = vmm.NoOverheads()
	}
	m := vmm.New(sim.New(cfg.Seed), cfg.GuestCores, sched, ov)
	sc.M = m
	if cfg.TraceRecords > 0 {
		sc.Tracer = trace.New(cfg.TraceRecords)
		m.SetTracer(sc.Tracer)
	}
	sc.Vantage = m.AddVCPU(vmName(0), vantageProg, 256, cfg.Capped)
	for i := 1; i < n; i++ {
		m.AddVCPU(vmName(i), bgProgram(cfg, i), 256, cfg.Capped)
	}
	return sc, nil
}

func vmName(i int) string { return fmt.Sprintf("vm%d.0", i) }
