package experiments

import (
	"fmt"
	"math/rand"

	"tableau/internal/faults"
	"tableau/internal/fleet"
	"tableau/internal/planner"
	"tableau/internal/verify"
)

// The failover experiment drives the fleet's failure domains end to
// end: a journaled 1000-host fleet absorbs seeded crash storms that
// kill ~5% of the hosts mid-churn — each victim's journal store armed
// with a crash plan that fires at a planned append boundary — and the
// arbiter's Failover sweep resolves every downed host, either
// recovering it from the surviving journal image (rejoining with a
// bumped epoch version) or declaring it dead and evacuating its guests
// LS-first through the normal placement protocol. The storms sweep the
// fail-stop share, so the recover-vs-evacuate mix runs from pure
// recovery to pure evacuation. After every storm the failure-seam
// oracle (verify.CheckFleet) replays all host ledgers across the
// crash/recover/evacuate seams — oracle_violations must be 0 — and the
// rows are byte-identical at any -parallel setting.

// failoverParams sizes one failover run.
type failoverParams struct {
	hosts, cores, slots int
	spares, placers     int
	maxAttempts         int
	vms                 int   // fill-wave population
	storms              int   // crash storms (fail-stop share swept per storm)
	victims             int   // hosts armed per storm
	churnPct            int   // % of live VMs churned while a storm is armed
	maxAppend           int   // latest append boundary a crash can fire at
	seed                int64
}

func failoverQuickParams() failoverParams {
	return failoverParams{
		hosts: 1000, cores: 8, slots: 20,
		spares: 60, placers: 8, maxAttempts: 6,
		vms: 10_000, storms: 4, victims: 50,
		churnPct: 8, maxAppend: 3,
		seed: 42,
	}
}

// failoverShortParams is the CI-sized variant: same code paths (armed
// storms, mid-churn crashes, recover and evacuate seams, the swept
// fail-stop mix), two orders of magnitude fewer flushes.
func failoverShortParams() failoverParams {
	return failoverParams{
		hosts: 48, cores: 8, slots: 20,
		spares: 6, placers: 6, maxAttempts: 6,
		vms: 480, storms: 4, victims: 4,
		churnPct: 10, maxAppend: 2,
		seed: 42,
	}
}

// failStopSweep is the per-storm fail-stop percentage cycle: pure
// recovery, two mixed bands, pure evacuation.
var failStopSweep = []int{0, 35, 65, 100}

// Failover runs the fleet failure-domain experiment. Full mode runs
// the sweep twice, so the fleet degrades through eight storms.
func Failover(mode Mode) (*Result, error) {
	p := failoverQuickParams()
	if mode == Full {
		p.storms = 8
	}
	return runFailover(p)
}

func runFailover(p failoverParams) (*Result, error) {
	cache := planner.NewCache(8192)
	arb, err := fleet.New(fleet.Config{
		Hosts: p.hosts, Cores: p.cores, SlotsPerHost: p.slots,
		Placers: p.placers, MaxAttempts: p.maxAttempts, SpareHosts: p.spares,
		Cache: cache, ForEach: ForEach, Journal: true,
	})
	if err != nil {
		return nil, err
	}
	defer arb.Close()

	r := &Result{
		Name:  "failover",
		Title: fmt.Sprintf("Fleet failure domains: %d hosts x %d VMs, seeded crash storms mid-churn, recover-vs-evacuate sweep", p.hosts, p.vms),
		Header: []string{
			"storm", "fail_stop_pct", "armed", "hosts_down",
			"displaced", "recovered", "evacuated", "evac_sheds", "lost",
			"departs_deferred", "conflicts", "retries", "unplaced",
			"oracle_violations",
		},
		Note: "Each storm arms a seeded crash plan on ~5% of the hosts and churns the fleet until the crashes fire mid-commit; Failover then recovers every host whose journal image survived (rejoining past its pre-crash version) and evacuates the rest LS-first with spare promotion and best-effort sheds under pressure. displaced counts guests riding through the seam (recovered in place or evacuated); lost counts evacuees no host could take — truthfully accounted, never silently dropped. oracle_violations replays every host ledger across the crash/recover/evacuate seams through verify.CheckFleet and must be 0.",
	}

	prev := arb.Stats()
	row := func(storm string, failStopPct, armed int) {
		st := arb.Stats()
		viol := len(verify.CheckFleet(arb))
		r.Rows = append(r.Rows, []string{
			storm, itoa(int64(failStopPct)), itoa(int64(armed)),
			itoa(st.HostsDown - prev.HostsDown),
			itoa(st.Displaced - prev.Displaced),
			itoa(st.Recovered - prev.Recovered),
			itoa(st.Evacuated - prev.Evacuated),
			itoa(st.EvacSheds - prev.EvacSheds),
			itoa(st.Lost - prev.Lost),
			itoa(st.DepartsDeferred - prev.DepartsDeferred),
			itoa(st.Conflicts - prev.Conflicts),
			itoa(st.Retries - prev.Retries),
			itoa(st.Unplaced - prev.Unplaced),
			itoa(int64(viol)),
		})
		prev = st
	}

	rng := rand.New(rand.NewSource(p.seed))
	mkVMs := func(prefix string, n int) []fleet.VM {
		vms := make([]fleet.VM, n)
		for i := range vms {
			vms[i] = fleet.VM{
				Name:        fmt.Sprintf("%s%d", prefix, i),
				Util:        fleetUtil(rng),
				LatencyGoal: 20_000_000,
			}
		}
		// Class draw last, after every structural draw: ~35% best-effort,
		// so evacuations carry both wave classes and pressure sheds bite.
		for i := range vms {
			if rng.Intn(100) < 35 {
				vms[i].Class = planner.BE
			}
		}
		return vms
	}

	if _, err := arb.PlaceBatch(mkVMs("v", p.vms)); err != nil {
		return nil, err
	}
	row("fill", 0, 0)

	for k := 1; k <= p.storms; k++ {
		failStopPct := failStopSweep[(k-1)%len(failStopSweep)]
		plan, err := faults.GenerateHostCrashPlan(rng.Int63(), p.hosts, p.victims, failStopPct, p.maxAppend)
		if err != nil {
			return nil, err
		}
		armed, err := arb.ArmCrashes(plan)
		if err != nil {
			return nil, err
		}
		// Churn while the storm is armed: the crashes fire as commit
		// traffic reaches each victim's planned append boundary.
		live := arb.PlacedNames()
		n := len(live) * p.churnPct / 100
		perm := rng.Perm(len(live))
		departs := make([]string, n)
		for i := 0; i < n; i++ {
			departs[i] = live[perm[i]]
		}
		if _, err := arb.DepartBatch(departs); err != nil {
			return nil, err
		}
		if _, err := arb.PlaceBatch(mkVMs(fmt.Sprintf("c%d-", k), n)); err != nil {
			return nil, err
		}
		if _, err := arb.Failover(); err != nil {
			return nil, err
		}
		row(fmt.Sprintf("storm%d", k), failStopPct, armed)
	}
	return r, nil
}
