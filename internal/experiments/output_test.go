package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	if m, err := ParseMode(""); err != nil || m != Quick {
		t.Errorf("ParseMode(\"\") = %v, %v", m, err)
	}
	if m, err := ParseMode("quick"); err != nil || m != Quick {
		t.Errorf("ParseMode(quick) = %v, %v", m, err)
	}
	if m, err := ParseMode("full"); err != nil || m != Full {
		t.Errorf("ParseMode(full) = %v, %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus) accepted")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		Name:   "demo",
		Title:  "A demo result",
		Header: []string{"col_a", "b"},
		Rows:   [][]string{{"1", "two"}, {"three", "4"}},
		Note:   "a note",
	}
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "A demo result", "a note", "col_a", "three"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fprint output missing %q:\n%s", want, out)
		}
	}
	path := filepath.Join(t.TempDir(), "demo.csv")
	if err := r.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); got != "col_a,b\n1,two\nthree,4" {
		t.Errorf("CSV = %q", got)
	}
	if err := r.WriteCSV(filepath.Join(t.TempDir(), "missing", "x.csv")); err == nil {
		t.Error("WriteCSV into a missing directory should fail")
	}
}

func TestFig3Fig4Render(t *testing.T) {
	f3 := Fig3(Quick)
	if f3.Name != "fig3" || len(f3.Rows) == 0 {
		t.Errorf("Fig3 = %+v", f3)
	}
	f4 := Fig4(Quick)
	if f4.Name != "fig4" || len(f4.Rows) != len(f3.Rows) {
		t.Errorf("Fig4 rows = %d, Fig3 rows = %d", len(f4.Rows), len(f3.Rows))
	}
}

func TestAblationRender(t *testing.T) {
	r := AblationResult()
	if len(r.Rows) != 16 {
		t.Errorf("ablation rows = %d, want 4 workloads x 4 configs", len(r.Rows))
	}
}

func TestLevel2Render(t *testing.T) {
	r, err := Level2Result(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || !strings.Contains(r.Rows[0][2], "%") {
		t.Errorf("level2 rows = %v", r.Rows)
	}
}

func TestBuildRejectsInvalidConfigs(t *testing.T) {
	if _, err := Build(ScenarioConfig{Scheduler: Credit2, Capped: true}, nil); err == nil {
		t.Error("capped Credit2 accepted")
	}
	if _, err := Build(ScenarioConfig{Scheduler: RTDS, Capped: false}, nil); err == nil {
		t.Error("uncapped RTDS accepted")
	}
	if _, err := Build(ScenarioConfig{Scheduler: "nope", Capped: true}, nil); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := Build(ScenarioConfig{Scheduler: Tableau, Capped: true, LatencyGoal: 3}, nil); err == nil {
		t.Error("unenforceable latency goal accepted")
	}
}

func TestFig5MatrixRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-cell matrix")
	}
	r, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 18 {
		t.Errorf("fig5 rows = %d, want 18 (2 scenarios x 3 backgrounds x 3 schedulers)", len(r.Rows))
	}
}

func TestOverheadResultRender(t *testing.T) {
	if testing.Short() {
		t.Skip("timed scenario run")
	}
	r, err := OverheadResult(16, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Errorf("tab1 rows = %d", len(r.Rows))
	}
	if r.Name != "tab1" {
		t.Errorf("name = %s", r.Name)
	}
	r2, err := OverheadResult(48, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Name != "tab2" {
		t.Errorf("name = %s", r2.Name)
	}
}
