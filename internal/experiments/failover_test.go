package experiments

import (
	"bytes"
	"testing"
)

// TestFailoverDeterminism runs the fleet failure-domain experiment at
// -parallel 1 and -parallel 8 and demands byte-identical CSV: per-host
// commit order is placer-ordered and round-frozen, so each armed crash
// fires at the same append boundary at any worker count, and the
// recover/evacuate accounting must not leak parallelism into any
// counter. It also gates the experiment's claims: zero oracle
// violations after every storm, and both resolution paths — recovery
// and evacuation — actually taken across the sweep. -short runs the
// CI-sized fleet; the full test runs the real 1000-host one.
func TestFailoverDeterminism(t *testing.T) {
	p := failoverQuickParams()
	if testing.Short() {
		p = failoverShortParams()
	}
	prev := Parallelism()
	defer SetParallelism(prev)

	run := func(par int) *Result {
		SetParallelism(par)
		r, err := runFailover(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := run(1)
	r8 := run(8)
	b1, b8 := csvBytes(t, r1), csvBytes(t, r8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("failover CSV differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", b1, b8)
	}

	for _, v := range fleetColumn(t, r1, "oracle_violations") {
		if v != 0 {
			t.Fatalf("failover run has oracle violations:\n%s", b1)
		}
	}
	sum := func(name string) (total int64) {
		for _, v := range fleetColumn(t, r1, name) {
			total += v
		}
		return
	}
	if sum("hosts_down") == 0 || sum("displaced") == 0 {
		t.Fatalf("failover storms took no host down:\n%s", b1)
	}
	if sum("recovered") == 0 {
		t.Fatalf("no host recovered from its journal image:\n%s", b1)
	}
	if sum("evacuated") == 0 {
		t.Fatalf("no guest was evacuated off a dead host:\n%s", b1)
	}
	// Truthful accounting: every displaced guest recovered in place,
	// evacuated, or was explicitly lost.
	if sum("displaced") < sum("evacuated")+sum("lost") {
		t.Fatalf("displaced < evacuated+lost — the accounting invented guests:\n%s", b1)
	}
}
