package experiments

import (
	"fmt"
	"strings"

	"tableau/internal/verify"
)

// Verify is the property-based soak (cmd/experiments -run verify): it
// generates scenarios with internal/verify, replays each through every
// invariant oracle, and reports one row per scenario. Unlike the
// figure experiments this does not reproduce a paper artifact — it
// checks that the reproduction itself honors the guarantees the paper
// claims (utilization, bounded blackout, conservation across table
// switches, trace/probe agreement). Quick mode soaks 120 scenarios,
// full mode 600, both from a fixed seed so any violation row is a
// replayable repro.
func Verify(mode Mode) (*Result, error) {
	n := 120
	if mode == Full {
		n = 600
	}
	rep, err := verify.Soak(verify.SoakOptions{
		Seed:    1,
		N:       n,
		ForEach: ForEach,
	})
	if err != nil {
		return nil, err
	}

	r := &Result{
		Name:   "verify",
		Title:  "invariant soak over generated scenarios",
		Header: []string{"seed", "cores", "vms", "hogs", "faults", "replans", "churn", "table_ms", "adoptions", "maxgap_ms", "violations"},
		Note:   fmt.Sprintf("%d scenarios, %d violation(s); oracles: utilization, max-gap, conservation, trace-consistency, continuity (+ sampled metamorphic & differential)", rep.Scenarios, rep.Violations),
	}
	for _, row := range rep.Rows {
		r.Rows = append(r.Rows, []string{
			itoa(row.Seed),
			itoa(int64(row.Cores)),
			itoa(int64(row.VMs)),
			itoa(int64(row.Hogs)),
			itoa(int64(row.Faults)),
			itoa(int64(row.Replans)),
			itoa(int64(row.Churn)),
			ms(row.TableLenNs),
			itoa(int64(row.Adopted)),
			ms(row.MaxGapNs),
			strings.Join(row.Violations, "; "),
		})
	}
	if rep.Violations > 0 {
		return r, fmt.Errorf("verify: %d invariant violation(s) in %d scenarios (see rows)", rep.Violations, rep.Scenarios)
	}
	return r, nil
}
