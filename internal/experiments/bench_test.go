package experiments

import (
	"testing"

	"tableau/internal/workload"
)

// BenchmarkScenario measures the binary tracer's cost on the real
// evaluation hot path: the Fig. 5 scenario (full density, calibrated
// overhead model, CPU background) with tracing off (a nil tracer) and
// on. benchdiff gates both timings against the committed snapshot; the
// traced-vs-untraced delta on this workload is the overhead number
// DESIGN.md §7 quotes.
func BenchmarkScenario(b *testing.B) {
	run := func(b *testing.B, records int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			probe := &workload.Probe{Chunk: 10_000}
			sc, err := Build(ScenarioConfig{
				Scheduler:    Tableau,
				Capped:       true,
				Background:   BGCPU,
				Seed:         42,
				TraceRecords: records,
			}, probe.Program())
			if err != nil {
				b.Fatal(err)
			}
			sc.M.Start()
			sc.M.Run(500_000_000)
			sc.M.Stop()
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, 0) })
	b.Run("traced", func(b *testing.B) { run(b, 1<<12) })
}
