package experiments

import "testing"

// TestVerifyQuick pins the -run verify wiring: the quick soak must be
// violation-free and produce one row per scenario with the CSV header
// the docs promise.
func TestVerifyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick soak still runs 120 simulations")
	}
	r, err := Verify(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 120 {
		t.Fatalf("quick verify produced %d rows, want 120", len(r.Rows))
	}
	if got, want := len(r.Header), 11; got != want {
		t.Fatalf("verify header has %d columns, want %d", got, want)
	}
	for _, row := range r.Rows {
		if row[len(row)-1] != "" {
			t.Fatalf("violation row in quick soak: %v", row)
		}
	}
}
