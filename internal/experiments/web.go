package experiments

import (
	"fmt"
	"sort"

	"tableau/internal/netdev"
	"tableau/internal/workload"
)

// NIC and request-cost parameters of the web scenario (Sec. 7.4): each
// VM has an SR-IOV virtual function on the shared 10 GbE link; the
// vantage VM serves a PHP "application" over HTTPS from tmpfs, so the
// per-request cost is CPU (TLS+PHP+copies) plus wire time.
const (
	// nicRate is the effective per-VM transmit rate. The link is
	// 10 GbE, but an SR-IOV virtual function's achievable rate is far
	// lower once VF scheduling, PCIe descriptor handling, and sharing
	// with 47 sibling VFs are paid; 300 MB/s (~2.4 Gbit/s) per VM makes
	// large-transfer wire time dominate the way the paper observed.
	nicRate = 300_000_000
	nicRing = 262_144 // 256 KiB transmit ring

	// Request CPU costs, calibrated so the vantage VM's capped capacity
	// lands where the paper's Fig. 7 curves saturate: ~153 µs per 1 KiB
	// request (peak ~1.6k req/s at a 25% cap) and ~410 µs per 100 KiB
	// request (peak ~600 req/s). Above 128 KiB the zero-copy path costs
	// far less CPU per byte, so 1 MiB responses are wire-bound.
	webBaseCost        = 150_000
	webCostPerKiB      = 2_600
	webCostPerKiBLarge = 300
)

// File sizes of Fig. 7.
const (
	KiB = 1024
	MiB = 1024 * 1024
)

// NewWebServer returns a web server configured with the evaluation's
// calibrated NIC and request-cost parameters, for examples and tools
// that want to reproduce Fig. 7/8 conditions.
func NewWebServer() *workload.WebServer {
	return &workload.WebServer{
		NIC:             netdev.New(nicRate, nicRing),
		BaseCost:        webBaseCost,
		CostPerKiB:      webCostPerKiB,
		CostPerKiBLarge: webCostPerKiBLarge,
	}
}

// WebPoint is one point of a Fig. 7/8 curve.
type WebPoint struct {
	Scheduler  SchedulerKind
	Capped     bool
	Background BGKind
	FileBytes  int64
	OfferedRPS float64
	// AchievedRPS counts fully transmitted responses per second.
	AchievedRPS float64
	MeanNs      float64
	P99Ns       int64
	MaxNs       int64
}

// RunWebPoint runs one load point: an open-loop constant-rate request
// stream against the vantage web server for the given duration.
func RunWebPoint(kind SchedulerKind, capped bool, bg BGKind, fileBytes int64, rps float64, mode Mode, seed int64) (WebPoint, error) {
	srv := NewWebServer()
	sc, err := Build(ScenarioConfig{
		Scheduler:  kind,
		Capped:     capped,
		Background: bg,
		Seed:       seed,
	}, srv.Program())
	if err != nil {
		return WebPoint{}, err
	}
	srv.Bind(sc.Vantage)
	duration := int64(2_000_000_000)
	if mode == Full {
		duration = 10_000_000_000
	}
	srv.CountUntil = duration
	sc.M.Start()
	workload.RunOpenLoop(sc.M, srv, 0, rps, duration, fileBytes)
	// Grace period: responses already queued when the measurement window
	// closes still record their latency, but only completions inside the
	// window count toward throughput.
	sc.M.Run(duration + 200_000_000)
	sc.M.Stop()
	h := srv.Latencies()
	return WebPoint{
		Scheduler:   kind,
		Capped:      capped,
		Background:  bg,
		FileBytes:   fileBytes,
		OfferedRPS:  rps,
		AchievedRPS: float64(srv.CompletedInWindow()) / (float64(duration) / 1e9),
		MeanNs:      h.Mean(),
		P99Ns:       h.P99(),
		MaxNs:       h.Max(),
	}, nil
}

// webRates returns the offered-load sweep for a file size: geometric
// steps up to beyond the expected saturation point.
func webRates(fileBytes int64, mode Mode) []float64 {
	var top float64
	switch {
	case fileBytes <= 1*KiB:
		top = 1900
	case fileBytes <= 100*KiB:
		top = 1000
	default:
		top = 350
	}
	// Denser sampling near saturation, where the SLA crossovers live.
	fracs := []float64{0.2, 0.4, 0.6, 0.75, 0.85, 0.95, 1.0}
	if mode == Full {
		fracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.78, 0.86, 0.92, 0.97, 1.0}
	}
	rates := make([]float64, len(fracs))
	for i, f := range fracs {
		rates[i] = top * f
	}
	return rates
}

// RunWebSweep produces the curves of one Fig. 7/8 panel row: every
// scheduler of the scenario kind at every offered rate. The cells fan
// out across the configured worker pool (each is an independent
// simulation); results come back in slot order, so the rendered series
// is identical at any parallelism.
func RunWebSweep(capped bool, bg BGKind, fileBytes int64, mode Mode) ([]WebPoint, error) {
	scheds := CappedSchedulers
	if !capped {
		scheds = UncappedSchedulers
	}
	rates := webRates(fileBytes, mode)
	type job struct {
		kind SchedulerKind
		rate float64
	}
	var jobs []job
	for _, k := range scheds {
		for _, r := range rates {
			jobs = append(jobs, job{k, r})
		}
	}
	points, err := Collect(len(jobs), func(i int) (WebPoint, error) {
		return RunWebPoint(jobs[i].kind, capped, bg, fileBytes, jobs[i].rate, mode, 17)
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(points, func(a, b int) bool {
		if points[a].Scheduler != points[b].Scheduler {
			return points[a].Scheduler < points[b].Scheduler
		}
		return points[a].OfferedRPS < points[b].OfferedRPS
	})
	return points, nil
}

// webResult renders a sweep.
func webResult(name, title string, pts []WebPoint, note string) *Result {
	r := &Result{
		Name:   name,
		Title:  title,
		Header: []string{"scheduler", "offered_rps", "achieved_rps", "mean_ms", "p99_ms", "max_ms"},
		Note:   note,
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			string(p.Scheduler),
			ftoa(p.OfferedRPS),
			ftoa(p.AchievedRPS),
			msF(p.MeanNs),
			ms(p.P99Ns),
			ms(p.MaxNs),
		})
	}
	return r
}

// Fig7 reproduces one row of Fig. 7 (identified by capped and file
// size) with the I/O-intensive background workload.
func Fig7(capped bool, fileBytes int64, mode Mode) (*Result, error) {
	pts, err := RunWebSweep(capped, BGIO, fileBytes, mode)
	if err != nil {
		return nil, err
	}
	label := "uncapped"
	if capped {
		label = "capped"
	}
	return webResult(
		fmt.Sprintf("fig7-%s-%s", label, sizeLabel(fileBytes)),
		fmt.Sprintf("nginx throughput/latency, %s files, %s, I/O background", sizeLabel(fileBytes), label),
		pts,
		"Paper: Tableau highest SLA-aware peak for 1/100 KiB; Credit wins capped 1 MiB (NIC under-utilisation); RTDS lowest peak under frequent invocations.",
	), nil
}

// Fig8 reproduces one row of Fig. 8: 100 KiB files with the
// cache-thrashing (fully CPU-bound) background workload.
func Fig8(capped bool, mode Mode) (*Result, error) {
	pts, err := RunWebSweep(capped, BGCPU, 100*KiB, mode)
	if err != nil {
		return nil, err
	}
	label := "uncapped"
	if capped {
		label = "capped"
	}
	return webResult(
		fmt.Sprintf("fig8-%s", label),
		fmt.Sprintf("nginx throughput/latency, 100 KiB files, %s, CPU-bound background", label),
		pts,
		"Paper: little differentiation when capped (scheduler rarely invoked); uncapped, Credit's boost works (sole I/O VM) and Tableau beats both Credits.",
	), nil
}

// SLAPeak returns the highest achieved throughput among points whose
// p99 latency meets the SLA — the paper's "SLA-aware peak throughput"
// metric (e.g. 100 ms p99 for 1 KiB files).
func SLAPeak(pts []WebPoint, kind SchedulerKind, slaP99 int64) float64 {
	var best float64
	for _, p := range pts {
		if p.Scheduler == kind && p.P99Ns <= slaP99 && p.AchievedRPS > best {
			best = p.AchievedRPS
		}
	}
	return best
}

func sizeLabel(b int64) string {
	switch {
	case b >= MiB:
		return fmt.Sprintf("%dMiB", b/MiB)
	default:
		return fmt.Sprintf("%dKiB", b/KiB)
	}
}
