package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// tenancyCSV renders a tenancy run to CSV bytes at the given
// parallelism, restoring the previous setting afterwards.
func tenancyCSV(t *testing.T, parallel int) ([]byte, *Result) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(parallel)
	defer SetParallelism(prev)

	r, err := Tenancy(Quick)
	if err != nil {
		t.Fatalf("tenancy at -parallel %d: %v", parallel, err)
	}
	path := filepath.Join(t.TempDir(), "tenancy.csv")
	if err := r.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, r
}

// TestTenancyDeterminism is the tenancy-short CI gate: the tenancy CSV
// must be byte-identical across runs and across -parallel settings,
// the surge cell must actually shed (BE pays for LS admission), the
// steady cell must not, and LS must keep serving through the surge
// while the shed BE guests leave an unserved tail.
func TestTenancyDeterminism(t *testing.T) {
	seq, r := tenancyCSV(t, 1)
	par, _ := tenancyCSV(t, 8)
	if string(seq) != string(par) {
		t.Fatalf("tenancy CSV differs between -parallel 1 and -parallel 8:\n--- p1 ---\n%s\n--- p8 ---\n%s", seq, par)
	}
	again, _ := tenancyCSV(t, 1)
	if string(seq) != string(again) {
		t.Fatal("tenancy CSV differs between two identical runs")
	}

	col := make(map[string]int, len(r.Header))
	for i, h := range r.Header {
		col[h] = i
	}
	num := func(row []string, name string) int64 {
		v, err := strconv.ParseInt(row[col[name]], 10, 64)
		if err != nil {
			t.Fatalf("column %s: %v", name, err)
		}
		return v
	}
	for _, row := range r.Rows {
		cell, class := row[col["cell"]], row[col["class"]]
		sheds := num(row, "sheds")
		requests, completed := num(row, "requests"), num(row, "completed")
		if completed == 0 {
			t.Errorf("%s/%s: no request completed", cell, class)
		}
		switch cell {
		case TenancyCellSteady:
			if sheds != 0 {
				t.Errorf("steady cell committed %d sheds, want 0", sheds)
			}
			if completed != requests {
				t.Errorf("steady/%s: %d of %d requests unserved without any shed", class, requests-completed, requests)
			}
		case TenancyCellSurge:
			if sheds == 0 {
				t.Errorf("surge cell committed no shed — the LS wave did not overflow admission")
			}
			if class == "LS" && completed != requests {
				t.Errorf("surge/LS: %d of %d requests unserved — LS must keep serving through the surge", requests-completed, requests)
			}
			if class == "BE" && completed >= requests {
				t.Errorf("surge/BE: all %d requests served — the shed left no tail, so the shed path was not exercised", requests)
			}
		}
	}
}
