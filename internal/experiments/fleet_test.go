package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func csvBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write(r.Header); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(r.Rows); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fleetColumn(t *testing.T, r *Result, name string) []int64 {
	t.Helper()
	col := -1
	for i, h := range r.Header {
		if h == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("fleet result has no %q column", name)
	}
	out := make([]int64, len(r.Rows))
	for i, row := range r.Rows {
		v, err := strconv.ParseInt(row[col], 10, 64)
		if err != nil {
			t.Fatalf("row %d %s = %q: %v", i, name, row[col], err)
		}
		out[i] = v
	}
	return out
}

// TestFleetDeterminism runs the fleet churn-storm experiment at
// -parallel 1 and -parallel 8 and demands byte-identical CSV: the
// placement rounds freeze snapshots and aggregate in deterministic
// order, so worker count must not leak into any counter. It also
// gates the experiment's claims: zero oracle violations after every
// storm, and nonzero conflict-retry and admission-reject counts (the
// optimistic protocol's contention paths really ran). -short runs the
// CI-sized fleet; the full test runs the real 1000-host x 10k-VM one.
func TestFleetDeterminism(t *testing.T) {
	p := fleetQuickParams()
	if testing.Short() {
		p = fleetShortParams()
	}
	prev := Parallelism()
	defer SetParallelism(prev)

	run := func(par int) *Result {
		SetParallelism(par)
		r, err := runFleet(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := run(1)
	r8 := run(8)
	b1, b8 := csvBytes(t, r1), csvBytes(t, r8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("fleet CSV differs between -parallel 1 and 8:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s", b1, b8)
	}

	for _, v := range fleetColumn(t, r1, "oracle_violations") {
		if v != 0 {
			t.Fatalf("fleet run has oracle violations:\n%s", b1)
		}
	}
	sum := func(name string) (total int64) {
		for _, v := range fleetColumn(t, r1, name) {
			total += v
		}
		return
	}
	if sum("placed") == 0 || sum("departed") == 0 {
		t.Fatalf("fleet storm placed/departed nothing:\n%s", b1)
	}
	if sum("conflicts") == 0 || sum("retries") == 0 {
		t.Fatalf("fleet storm exercised no optimistic-commit conflicts:\n%s", b1)
	}
	if sum("admission_rejects") == 0 {
		t.Fatalf("fleet storm never hit the authoritative admission gate:\n%s", b1)
	}
	// This experiment injects no crashes: the failure-domain counters
	// must be pinned at zero (the failover experiment owns them).
	for _, name := range []string{"hosts_down", "recovered", "evacuated", "evac_sheds"} {
		if sum(name) != 0 {
			t.Fatalf("fault-free fleet run has nonzero %s:\n%s", name, b1)
		}
	}
}
