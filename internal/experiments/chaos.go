package experiments

import (
	"fmt"

	"tableau/internal/faults"
	"tableau/internal/table"
	"tableau/internal/workload"
)

// The chaos experiment extends the Fig. 5 intrinsic-latency methodology
// to faulty hardware: the same CPU-bound probe runs in the vantage VM
// while one fault class perturbs the machine during a window in the
// middle of the run, and the probe's maximum scheduling delay is
// reported separately for before, during, and after the window. The
// population is one core short of full density so that, after a
// fail-stop, the reserved utilization still fits the survivors and
// Tableau's emergency replan is admissible.

// ChaosFaults are the fault classes of the chaos matrix.
var ChaosFaults = []string{
	faults.KindPCPUFailStop,
	faults.KindPCPUStall,
	faults.KindTimerDrift,
	faults.KindIPIDrop,
}

// ChaosSchedulers are compared in the chaos matrix: the paper's two
// poles — table-driven Tableau and fully dynamic Credit.
var ChaosSchedulers = []SchedulerKind{Tableau, Credit}

// ChaosPoint is one cell of the chaos matrix.
type ChaosPoint struct {
	Scheduler SchedulerKind
	Fault     string
	// Maximum probe-observed scheduling delay per phase.
	MaxBefore, MaxDuring, MaxAfter int64
	// Recovery describes the control-plane outcome for Tableau
	// fail-stop cells ("replanned" or "degraded"); "-" elsewhere.
	Recovery string
	Samples  int64
}

// RunChaos runs one (scheduler, fault) cell. The fault window is
// [0.3h, 0.5h) of the horizon; fail-stop targets the probe's home core
// (worst case for a table-driven scheduler), and the Tableau fail-stop
// cell triggers core.System.EmergencyReplan 10 ms after the failure,
// like a control plane reacting to a machine-check notification.
func RunChaos(kind SchedulerKind, fault string, mode Mode, seed int64) (ChaosPoint, error) {
	p, _, err := runChaos(kind, fault, mode, seed, 0)
	return p, err
}

// runChaos is RunChaos with an optional binary tracer attached
// (traceRecords > 0); it also returns the scenario so traced callers
// can reach the tracer.
func runChaos(kind SchedulerKind, fault string, mode Mode, seed int64, traceRecords int) (ChaosPoint, *Scenario, error) {
	horizon := int64(2_000_000_000)
	if mode == Full {
		horizon = 10_000_000_000
	}
	faultStart := 3 * horizon / 10
	faultEnd := horizon / 2

	probe := &workload.PhasedProbe{Chunk: 10_000, FaultStart: faultStart, FaultEnd: faultEnd}
	cfg := ScenarioConfig{
		Scheduler:  kind,
		Capped:     true,
		Background: BGCPU,
		Seed:       seed,
	}
	cfg = cfg.withDefaults()
	cfg.Population = (cfg.GuestCores - 1) * cfg.VMsPerCore
	cfg.TraceRecords = traceRecords
	sc, err := Build(cfg, probe.Program())
	if err != nil {
		return ChaosPoint{}, nil, err
	}

	// Fail the probe's home core under Tableau — the dead core takes the
	// vantage VM's entire reservation with it. Dynamic schedulers have no
	// home core; core 0 stands in.
	failCore := 0
	if sc.Dispatcher != nil {
		if hc := sc.Dispatcher.ActiveTable().VCPUs[0].HomeCore; hc >= 0 {
			failCore = hc
		}
	}

	window := faultEnd - faultStart
	var ev faults.Event
	switch fault {
	case faults.KindPCPUFailStop:
		ev = faults.Event{Kind: fault, At: faultStart, Core: failCore}
	case faults.KindPCPUStall:
		// A 50 ms SMI-style theft at the start of the window.
		stall := int64(50_000_000)
		if stall > window {
			stall = window
		}
		ev = faults.Event{Kind: fault, At: faultStart, Duration: stall, Core: failCore}
	case faults.KindTimerDrift:
		// Every timer on every core fires 2 ms late for the whole window.
		ev = faults.Event{Kind: fault, At: faultStart, Duration: window, Core: -1, Delay: 2_000_000}
	case faults.KindIPIDrop:
		ev = faults.Event{Kind: fault, At: faultStart, Duration: window, Core: -1}
	default:
		return ChaosPoint{}, nil, fmt.Errorf("experiments: unknown chaos fault %q", fault)
	}
	plan := &faults.Plan{Seed: seed, Events: []faults.Event{ev}}
	if _, err := faults.Attach(sc.M, plan); err != nil {
		return ChaosPoint{}, nil, err
	}

	recovery := "-"
	if kind == Tableau && fault == faults.KindPCPUFailStop {
		recovery = "degraded"
		sc.M.Eng.At(faultStart+10_000_000, func(int64) {
			res, err := sc.Sys.EmergencyReplan(sc.Dispatcher, failCore)
			if err != nil {
				return // admission rejected: stay in best-effort degraded mode
			}
			// Recovered only if the staged table re-establishes the
			// population's guarantees on the surviving cores.
			gs := make([]table.Guarantee, len(res.Guarantees))
			copy(gs, res.Guarantees)
			if res.Table.Check(gs) == nil {
				recovery = "replanned"
			}
		})
	}

	sc.M.Start()
	sc.M.Run(horizon)
	sc.M.Stop()
	sc.Tracer.FlushResidency(sc.M.Now())
	return ChaosPoint{
		Scheduler: kind,
		Fault:     fault,
		MaxBefore: probe.MaxBefore(),
		MaxDuring: probe.MaxDuring(),
		MaxAfter:  probe.MaxAfter(),
		Recovery:  recovery,
		Samples:   probe.Samples(),
	}, sc, nil
}

// Chaos runs the full fault matrix and renders it.
func Chaos(mode Mode) (*Result, error) {
	r := &Result{
		Name:   "chaos",
		Title:  "Maximum scheduling delay under injected faults (intrinsic-latency probe)",
		Header: []string{"scheduler", "fault", "max_before_ms", "max_during_ms", "max_after_ms", "recovery", "samples"},
		Note:   "Fault window = [0.3h, 0.5h). Fail-stop kills the probe's home core; Tableau replans onto the survivors 10 ms later (recovery column: replanned = guarantees re-verified on the staged table). during/after gaps bound the degraded-mode blackout.",
	}
	type cell struct {
		kind  SchedulerKind
		fault string
	}
	var cells []cell
	for _, k := range ChaosSchedulers {
		for _, f := range ChaosFaults {
			cells = append(cells, cell{k, f})
		}
	}
	pts, err := Collect(len(cells), func(i int) (ChaosPoint, error) {
		return RunChaos(cells[i].kind, cells[i].fault, mode, 42)
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			string(p.Scheduler), p.Fault,
			ms(p.MaxBefore), ms(p.MaxDuring), ms(p.MaxAfter),
			p.Recovery, itoa(p.Samples),
		})
	}
	return r, nil
}
