package experiments

import (
	"fmt"
	"math/rand"

	"tableau/internal/fleet"
	"tableau/internal/planner"
	"tableau/internal/verify"
)

// The fleet experiment drives the shared-state placement arbiter
// (internal/fleet) through scripted churn storms: a fill wave placing
// the whole population, churn storms that depart a seeded fraction and
// replace it with fresh arrivals, and a surge of large VMs that pushes
// the fleet to the admission edge — where cross-partition fallbacks
// collide placers on the same hosts (optimistic-commit conflicts), the
// hosts' authoritative admission checks refuse what advisory snapshot
// headroom predicted would fit, rejected VMs shed-retry into the spare
// pool, and the overflow tail exhausts its attempts. Every storm is a
// CSV row; after each one the cross-host continuity oracle
// (verify.CheckFleet) replays all host ledgers — oracle_violations
// must be 0. Placement fan-out runs on the deterministic ForEach pool,
// so the rows are byte-identical at any -parallel setting.

// fleetParams sizes one fleet run.
type fleetParams struct {
	hosts, cores, slots int
	spares, placers     int
	maxAttempts         int
	vms                 int // fill-wave population
	churnStorms         int
	churnPct            int // % of live VMs replaced per churn storm
	surge               int // surge arrivals (3/4-core VMs)
	seed                int64
}

func fleetQuickParams() fleetParams {
	return fleetParams{
		hosts: 1000, cores: 8, slots: 20,
		spares: 40, placers: 8, maxAttempts: 4,
		vms: 10_000, churnStorms: 4, churnPct: 8, surge: 5_000,
		seed: 42,
	}
}

// fleetShortParams is the CI-sized variant the -short tests run: same
// code paths (fill, churn, surge past the admission edge), two orders
// of magnitude fewer flushes.
func fleetShortParams() fleetParams {
	return fleetParams{
		hosts: 48, cores: 8, slots: 20,
		spares: 4, placers: 6, maxAttempts: 4,
		vms: 480, churnStorms: 2, churnPct: 10, surge: 280,
		seed: 42,
	}
}

// fleetUtil draws a guest reservation from the fill/churn menu
// (weights sum to 100): mostly quarter- and half-core VMs with a
// big-VM tail, averaging ≈0.44 cores so the fill wave lands the fleet
// near 60% reserved.
func fleetUtil(rng *rand.Rand) planner.Util {
	switch d := rng.Intn(100); {
	case d < 5:
		return planner.Util{Num: 1, Den: 8}
	case d < 40:
		return planner.Util{Num: 1, Den: 4}
	case d < 80:
		return planner.Util{Num: 1, Den: 2}
	default:
		return planner.Util{Num: 3, Den: 4}
	}
}

// Fleet runs the fleet placement experiment. Full mode doubles the
// churn storms and deepens the surge overflow.
func Fleet(mode Mode) (*Result, error) {
	p := fleetQuickParams()
	if mode == Full {
		p.churnStorms = 8
		p.surge += 1_000
	}
	return runFleet(p)
}

func runFleet(p fleetParams) (*Result, error) {
	cache := planner.NewCache(8192)
	arb, err := fleet.New(fleet.Config{
		Hosts: p.hosts, Cores: p.cores, SlotsPerHost: p.slots,
		Placers: p.placers, MaxAttempts: p.maxAttempts, SpareHosts: p.spares,
		Cache: cache, ForEach: ForEach,
	})
	if err != nil {
		return nil, err
	}
	defer arb.Close()

	r := &Result{
		Name:  "fleet",
		Title: fmt.Sprintf("Fleet placement arbiter: %d hosts x %d VMs, optimistic snapshot/commit/retry under churn storms", p.hosts, p.vms),
		Header: []string{
			"storm", "arrivals", "departures",
			"placed", "departed", "conflicts", "retries",
			"admission_rejects", "slot_rejects", "spare_placements", "unplaced",
			"transitions", "planner_calls",
			"hosts_down", "recovered", "evacuated", "evac_sheds",
			"oracle_violations",
		},
		Note: "Snapshot headroom is advisory; each host's admission check is the authoritative gate. conflicts = commits lost to a stale host version (the loser refreshes and retries, bounded); the surge deliberately overflows the fleet so rejects, spare placements and unplaced VMs are exercised. hosts_down/recovered/evacuated/evac_sheds are the failure-domain counters — this experiment injects no crashes, so they are pinned at 0 (the failover experiment exercises them). oracle_violations replays every host ledger through verify.CheckFleet cumulatively after the storm and must be 0.",
	}

	prevTotals := arb.ControllerTotals()
	prevStats := arb.Stats()
	row := func(storm string, arrivals, departures int, bs fleet.Stats) {
		totals := arb.ControllerTotals()
		stats := arb.Stats()
		viol := len(verify.CheckFleet(arb))
		r.Rows = append(r.Rows, []string{
			storm, itoa(int64(arrivals)), itoa(int64(departures)),
			itoa(bs.Placed), itoa(bs.Departed), itoa(bs.Conflicts), itoa(bs.Retries),
			itoa(bs.AdmissionRejects), itoa(bs.SlotRejects), itoa(bs.SparePlacements), itoa(bs.Unplaced),
			itoa(totals.Transitions - prevTotals.Transitions),
			itoa(totals.PlannerCalls - prevTotals.PlannerCalls),
			itoa(stats.HostsDown - prevStats.HostsDown),
			itoa(stats.Recovered - prevStats.Recovered),
			itoa(stats.Evacuated - prevStats.Evacuated),
			itoa(stats.EvacSheds - prevStats.EvacSheds),
			itoa(int64(viol)),
		})
		prevTotals = totals
		prevStats = stats
	}

	rng := rand.New(rand.NewSource(p.seed))
	mkVMs := func(prefix string, n int, u *planner.Util) []fleet.VM {
		vms := make([]fleet.VM, n)
		for i := range vms {
			util := fleetUtil(rng)
			if u != nil {
				util = *u
			}
			vms[i] = fleet.VM{
				Name:        fmt.Sprintf("%s%d", prefix, i),
				Util:        util,
				LatencyGoal: 20_000_000,
			}
		}
		return vms
	}

	bs, err := arb.PlaceBatch(mkVMs("v", p.vms, nil))
	if err != nil {
		return nil, err
	}
	row("fill", p.vms, 0, bs)

	for k := 1; k <= p.churnStorms; k++ {
		live := arb.PlacedNames()
		n := len(live) * p.churnPct / 100
		perm := rng.Perm(len(live))
		departs := make([]string, n)
		for i := 0; i < n; i++ {
			departs[i] = live[perm[i]]
		}
		db, err := arb.DepartBatch(departs)
		if err != nil {
			return nil, err
		}
		pb, err := arb.PlaceBatch(mkVMs(fmt.Sprintf("c%d-", k), n, nil))
		if err != nil {
			return nil, err
		}
		db.Placed += pb.Placed
		db.Conflicts += pb.Conflicts
		db.Retries += pb.Retries
		db.AdmissionRejects += pb.AdmissionRejects
		db.SlotRejects += pb.SlotRejects
		db.SparePlacements += pb.SparePlacements
		db.Unplaced += pb.Unplaced
		row(fmt.Sprintf("churn%d", k), n, n, db)
	}

	big := planner.Util{Num: 3, Den: 4}
	bs, err = arb.PlaceBatch(mkVMs("g", p.surge, &big))
	if err != nil {
		return nil, err
	}
	row("surge", p.surge, 0, bs)
	return r, nil
}
