// Package sim provides a minimal deterministic discrete-event simulation
// engine: a virtual clock in integer nanoseconds and a binary-heap event
// queue with stable tie-breaking. It is the substrate under the machine
// model in internal/vmm, standing in for the paper's physical testbed.
//
// The engine is allocation-free on its steady-state path: fired and
// canceled events are recycled through a free list, so a long simulation
// performs no per-Schedule heap allocation once the event population has
// peaked. Callers hold generation-guarded Handles rather than raw event
// pointers, so a stale Cancel on an already-recycled event is a no-op
// instead of silently canceling whatever the slot was reused for.
package sim

import (
	"fmt"
	"math/rand"
)

// initialCapacity pre-grows the event heap and free list so the warm-up
// phase of a typical machine simulation (one event per core plus I/O
// timers) never reallocates.
const initialCapacity = 256

// An Event is a callback scheduled to run at a virtual time. Events are
// owned and recycled by the Engine; callers interact with them through
// the Handle returned by At/After and must not retain *Event.
type Event struct {
	when int64
	seq  uint64 // insertion order, for deterministic ties
	gen  uint64 // incremented on every recycle; guards stale Handles
	fn   func(now int64)
	// canceled events stay in the heap but are skipped and recycled on
	// pop.
	canceled bool
}

// A Handle refers to one scheduled occurrence of an event. The zero
// Handle is inert: Cancel is a no-op and Scheduled reports false.
// Handles are values; copy them freely.
type Handle struct {
	ev   *Event
	gen  uint64
	when int64
}

// When returns the virtual time the occurrence was scheduled for. It
// stays valid after the event fires or is canceled.
func (h Handle) When() int64 { return h.when }

// Scheduled reports whether the occurrence is still pending: not yet
// fired, not canceled, and not recycled into a different occurrence.
func (h Handle) Scheduled() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// Cancel prevents the occurrence from firing. Canceling an already-fired,
// already-canceled, or zero handle is a no-op: the generation check
// guarantees a stale handle can never cancel a recycled event.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.canceled = true
	}
}

// Engine is a discrete-event simulator. The zero value is not usable;
// call New.
type Engine struct {
	now    int64
	seq    uint64
	events []*Event // binary min-heap on (when, seq)
	free   []*Event // recycled events ready for reuse
	rng    *rand.Rand
}

// New returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		events: make([]*Event, 0, initialCapacity),
		free:   make([]*Event, 0, initialCapacity),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time in ns.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time when (>= Now) and returns a
// handle that can cancel it. Scheduling in the past panics: it always
// indicates a simulation bug.
func (e *Engine) At(when int64, fn func(now int64)) Handle {
	if when < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", when, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.when, ev.seq, ev.fn = when, e.seq, fn
	e.seq++
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen, when: when}
}

// After schedules fn to run delay ns from now.
func (e *Engine) After(delay int64, fn func(now int64)) Handle {
	return e.At(e.now+delay, fn)
}

// recycle returns a popped event to the free list. Bumping the
// generation first invalidates every outstanding Handle to this
// occurrence; dropping fn releases the closure for the GC.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// Step runs the next pending event. It returns false if no events
// remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.when
		fn := ev.fn
		e.recycle(ev)
		fn(e.now)
		return true
	}
	return false
}

// RunUntil processes events in order until the clock reaches deadline
// (events at exactly deadline are not run) or the queue drains. The
// clock is left at deadline if it was reached, otherwise at the last
// event time.
func (e *Engine) RunUntil(deadline int64) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			e.recycle(e.pop())
			continue
		}
		if next.when >= deadline {
			break
		}
		e.pop()
		e.now = next.when
		fn := next.fn
		e.recycle(next)
		fn(e.now)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Len returns the total number of queued events, including canceled ones
// not yet reclaimed. It is O(1); use Pending for the live count.
func (e *Engine) Len() int { return len(e.events) }

// Pending returns the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// The heap is hand-rolled rather than container/heap so the hot
// push/pop path inlines and never goes through an interface.

func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (e *Engine) pop() *Event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return top
}

// siftDown places ev (the former last element) starting from the root.
func (e *Engine) siftDown(ev *Event) {
	h := e.events
	n := len(h)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(h[r], h[c]) {
			c = r
		}
		if !eventLess(h[c], ev) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = ev
}
