// Package sim provides a minimal deterministic discrete-event simulation
// engine: a virtual clock in integer nanoseconds and a binary-heap event
// queue with stable tie-breaking. It is the substrate under the machine
// model in internal/vmm, standing in for the paper's physical testbed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// An Event is a callback scheduled to run at a virtual time.
type Event struct {
	when int64
	seq  uint64 // insertion order, for deterministic ties
	fn   func(now int64)
	// canceled events stay in the heap but are skipped on pop.
	canceled bool
	index    int
}

// When returns the virtual time the event is scheduled for.
func (e *Event) When() int64 { return e.when }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// call New.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	rng    *rand.Rand
}

// New returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in ns.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time when (>= Now) and returns a
// handle that can cancel it. Scheduling in the past panics: it always
// indicates a simulation bug.
func (e *Engine) At(when int64, fn func(now int64)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d, before now %d", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay ns from now.
func (e *Engine) After(delay int64, fn func(now int64)) *Event {
	return e.At(e.now+delay, fn)
}

// Step runs the next pending event. It returns false if no events
// remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil processes events in order until the clock reaches deadline
// (events at exactly deadline are not run) or the queue drains. The
// clock is left at deadline if it was reached, otherwise at the last
// event time.
func (e *Engine) RunUntil(deadline int64) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.when >= deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.when
		next.fn(e.now)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}
