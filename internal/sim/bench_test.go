package sim

import "testing"

// BenchmarkEventScheduleAndRun is the steady-state hot path of every
// simulation: schedule, fire, recycle. With the free list it must run
// at ~0 allocs/op.
func BenchmarkEventScheduleAndRun(b *testing.B) {
	e := New(1)
	var cnt int
	fn := func(int64) { cnt++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+int64(i%64)+1, fn)
		if i%64 == 63 {
			e.RunUntil(e.Now() + 128)
		}
	}
}

// BenchmarkScheduleCancel measures the schedule-then-cancel path (timer
// re-arming, as vmm's Kick and chargeAsync do constantly): canceled
// events must also recycle without allocating.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New(1)
	fn := func(int64) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.At(e.Now()+10, fn)
		h.Cancel()
		if i%64 == 63 {
			e.RunUntil(e.Now() + 1)
		}
	}
	e.RunUntil(e.Now() + 100)
}

// BenchmarkSteadyStateAllocs asserts the allocation contract directly:
// after warm-up, a schedule/fire cycle performs zero heap allocations.
func BenchmarkSteadyStateAllocs(b *testing.B) {
	e := New(1)
	fn := func(int64) {}
	// Warm up the free list to the peak population used below.
	for i := 0; i < 128; i++ {
		e.At(e.Now()+int64(i%8)+1, fn)
		if i%8 == 7 {
			e.RunUntil(e.Now() + 16)
		}
	}
	e.RunUntil(e.Now() + 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+int64(i%8)+1, fn)
		if i%8 == 7 {
			e.RunUntil(e.Now() + 16)
		}
	}
}
