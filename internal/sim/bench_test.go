package sim

import "testing"

func BenchmarkEventScheduleAndRun(b *testing.B) {
	e := New(1)
	var cnt int
	fn := func(int64) { cnt++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+int64(i%64)+1, fn)
		if i%64 == 63 {
			e.RunUntil(e.Now() + 128)
		}
	}
}
