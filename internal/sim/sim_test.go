package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30, func(int64) { order = append(order, 3) })
	e.At(10, func(int64) { order = append(order, 1) })
	e.At(20, func(int64) { order = append(order, 2) })
	e.RunUntil(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %d, want 100", e.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(int64) { order = append(order, i) })
	}
	e.RunUntil(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want insertion order", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func(int64) { fired = true })
	ev.Cancel()
	e.RunUntil(20)
	if fired {
		t.Error("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d", e.Pending())
	}
	ev.Cancel() // double-cancel is a no-op
	var nilEv *Event
	nilEv.Cancel() // nil-cancel is a no-op
}

func TestAfter(t *testing.T) {
	e := New(1)
	var at int64
	e.At(10, func(now int64) {
		e.After(5, func(now2 int64) { at = now2 })
	})
	e.RunUntil(100)
	if at != 15 {
		t.Errorf("After fired at %d, want 15", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(1)
	fired := false
	e.At(50, func(int64) { fired = true })
	e.RunUntil(50) // event at exactly the deadline must not run
	if fired {
		t.Error("event at deadline fired")
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %d", e.Now())
	}
	e.RunUntil(51)
	if !fired {
		t.Error("event did not fire after deadline advanced")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func(int64) {})
	e.RunUntil(20)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for past event")
		}
	}()
	e.At(5, func(int64) {})
}

func TestStep(t *testing.T) {
	e := New(1)
	count := 0
	e.At(1, func(int64) { count++ })
	e.At(2, func(int64) { count++ })
	if !e.Step() || !e.Step() {
		t.Error("Step returned false with events pending")
	}
	if e.Step() {
		t.Error("Step returned true on empty queue")
	}
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New(1)
	var times []int64
	var rec func(now int64)
	rec = func(now int64) {
		times = append(times, now)
		if now < 50 {
			e.After(10, rec)
		}
	}
	e.At(0, rec)
	e.RunUntil(1000)
	want := []int64{0, 10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v", times)
		}
	}
}
