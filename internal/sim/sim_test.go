package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30, func(int64) { order = append(order, 3) })
	e.At(10, func(int64) { order = append(order, 1) })
	e.At(20, func(int64) { order = append(order, 2) })
	e.RunUntil(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %d, want 100", e.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(int64) { order = append(order, i) })
	}
	e.RunUntil(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want insertion order", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func(int64) { fired = true })
	if !ev.Scheduled() {
		t.Error("fresh handle not Scheduled")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Error("canceled handle still Scheduled")
	}
	e.RunUntil(20)
	if fired {
		t.Error("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d", e.Pending())
	}
	ev.Cancel() // double-cancel is a no-op
	var zero Handle
	zero.Cancel() // zero-handle cancel is a no-op
	if zero.Scheduled() {
		t.Error("zero handle claims Scheduled")
	}
}

func TestHandleWhenSurvivesFiring(t *testing.T) {
	e := New(1)
	h := e.At(42, func(int64) {})
	if h.When() != 42 {
		t.Errorf("When() = %d", h.When())
	}
	e.RunUntil(100)
	if h.When() != 42 {
		t.Errorf("When() after firing = %d, want 42", h.When())
	}
	if h.Scheduled() {
		t.Error("fired handle still Scheduled")
	}
}

// TestStaleCancelIsNoOp pins the free-list safety property: once an
// event fires and its slot is recycled into a new occurrence, a Cancel
// through the old handle must not touch the new occurrence.
func TestStaleCancelIsNoOp(t *testing.T) {
	e := New(1)
	h1 := e.At(10, func(int64) {})
	e.RunUntil(20) // h1 fires and is recycled
	fired := false
	h2 := e.At(30, func(int64) { fired = true })
	h1.Cancel() // stale: must not cancel h2's occurrence
	if !h2.Scheduled() {
		t.Fatal("stale Cancel hit a recycled event")
	}
	e.RunUntil(40)
	if !fired {
		t.Error("recycled occurrence did not fire")
	}
}

// TestCanceledEventIsRecycled verifies canceled events return to the
// free list when popped and that their stale handles stay inert.
func TestCanceledEventIsRecycled(t *testing.T) {
	e := New(1)
	h := e.At(10, func(int64) { t.Error("canceled event fired") })
	h.Cancel()
	e.RunUntil(20)
	if got := len(e.free); got != 1 {
		t.Fatalf("free list has %d events, want 1", got)
	}
	count := 0
	h2 := e.At(30, func(int64) { count++ })
	if len(e.free) != 0 {
		t.Error("At did not reuse the free list")
	}
	h.Cancel() // stale
	e.RunUntil(40)
	if count != 1 {
		t.Errorf("count = %d, want 1 (stale cancel must not stick)", count)
	}
	_ = h2
}

// TestSteadyStateDoesNotGrow runs a churning schedule/fire loop and
// checks the event population is fully recycled: the free list caps at
// the peak concurrent event count.
func TestSteadyStateDoesNotGrow(t *testing.T) {
	e := New(1)
	fired := 0
	for i := 0; i < 10_000; i++ {
		e.At(e.Now()+int64(i%8)+1, func(int64) { fired++ })
		if i%8 == 7 {
			e.RunUntil(e.Now() + 16)
		}
	}
	e.RunUntil(e.Now() + 1000)
	if fired != 10_000 {
		t.Fatalf("fired = %d", fired)
	}
	if e.Len() != 0 {
		t.Errorf("Len() = %d after drain", e.Len())
	}
	if len(e.free) > 16 {
		t.Errorf("free list grew to %d; recycling is not bounding the population", len(e.free))
	}
}

func TestLenCountsCanceled(t *testing.T) {
	e := New(1)
	h := e.At(10, func(int64) {})
	e.At(20, func(int64) {})
	h.Cancel()
	if e.Len() != 2 {
		t.Errorf("Len() = %d, want 2 (canceled events remain queued)", e.Len())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}

func TestAfter(t *testing.T) {
	e := New(1)
	var at int64
	e.At(10, func(now int64) {
		e.After(5, func(now2 int64) { at = now2 })
	})
	e.RunUntil(100)
	if at != 15 {
		t.Errorf("After fired at %d, want 15", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(1)
	fired := false
	e.At(50, func(int64) { fired = true })
	e.RunUntil(50) // event at exactly the deadline must not run
	if fired {
		t.Error("event at deadline fired")
	}
	if e.Now() != 50 {
		t.Errorf("Now() = %d", e.Now())
	}
	e.RunUntil(51)
	if !fired {
		t.Error("event did not fire after deadline advanced")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10, func(int64) {})
	e.RunUntil(20)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for past event")
		}
	}()
	e.At(5, func(int64) {})
}

func TestStep(t *testing.T) {
	e := New(1)
	count := 0
	e.At(1, func(int64) { count++ })
	e.At(2, func(int64) { count++ })
	if !e.Step() || !e.Step() {
		t.Error("Step returned false with events pending")
	}
	if e.Step() {
		t.Error("Step returned true on empty queue")
	}
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New(1)
	var times []int64
	var rec func(now int64)
	rec = func(now int64) {
		times = append(times, now)
		if now < 50 {
			e.After(10, rec)
		}
	}
	e.At(0, rec)
	e.RunUntil(1000)
	want := []int64{0, 10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v", times)
		}
	}
}

// TestHeapStress cross-checks the hand-rolled heap against a large
// pseudo-random schedule: pops must come out in (when, seq) order.
func TestHeapStress(t *testing.T) {
	e := New(7)
	const n = 5000
	for i := 0; i < n; i++ {
		e.At(int64(e.Rand().Intn(1000)), func(int64) {})
	}
	lastWhen, lastSeq := int64(-1), uint64(0)
	popped := 0
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.when < lastWhen || (ev.when == lastWhen && ev.seq <= lastSeq && popped > 0) {
			t.Fatalf("pop out of order: (%d,%d) after (%d,%d)", ev.when, ev.seq, lastWhen, lastSeq)
		}
		lastWhen, lastSeq = ev.when, ev.seq
		popped++
	}
	if popped != n {
		t.Fatalf("popped %d, want %d", popped, n)
	}
}
