package stats_test

import (
	"fmt"

	"tableau/internal/stats"
)

// ExampleHistogram records latencies and extracts the metrics the
// paper's evaluation reports: mean, p99, and maximum.
func ExampleHistogram() {
	h := stats.NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1..1000 µs
	}
	s := h.Summarize()
	fmt.Printf("n=%d mean=%.0fns max=%dns\n", s.Count, s.Mean, s.Max)
	fmt.Printf("p99 within 4%% of truth: %v\n", float64(s.P99) >= 0.96*990_000)
	// Output:
	// n=1000 mean=500500ns max=1000000ns
	// p99 within 4% of truth: true
}

// ExampleOpenLoop generates the intended start times of a wrk2-style
// constant-rate workload; measuring latency against these times is the
// coordinated-omission correction.
func ExampleOpenLoop() {
	times := stats.OpenLoop(0, 2000, 4) // 2000 req/s
	fmt.Println(times)
	// Output: [0 500000 1000000 1500000]
}
