package stats

import "testing"

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1000) * 977)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	for i := int64(0); i < 100_000; i++ {
		h.Record(i * 37)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
