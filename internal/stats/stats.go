// Package stats provides the latency-recording machinery for the
// benchmark harness: a log-bucketed histogram in the spirit of
// HdrHistogram (as used by wrk2 [2]), percentile/mean/max extraction,
// and a helper for coordinated-omission-correct open-loop load
// generation — the measurement methodology the paper adopts for its
// nginx experiments (Sec. 7.4).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Histogram records int64 values (typically latencies in ns) into
// logarithmic buckets with bounded relative error. The zero value is
// ready to use.
type Histogram struct {
	// subBucketBits controls resolution: each power-of-two range is
	// split into 2^subBucketBits linear sub-buckets, giving a relative
	// error of at most 2^-subBucketBits. 0 means the default of 5
	// (~3% error).
	subBucketBits uint

	counts map[int]int64
	n      int64
	sum    int64
	max    int64
	min    int64
}

// NewHistogram returns a histogram with the default resolution.
func NewHistogram() *Histogram { return &Histogram{} }

func (h *Histogram) bits() uint {
	if h.subBucketBits == 0 {
		return 5
	}
	return h.subBucketBits
}

// bucketOf maps a value to its bucket index.
func (h *Histogram) bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	b := h.bits()
	if v < int64(1)<<b {
		return int(v)
	}
	exp := uint(63 - bits.LeadingZeros64(uint64(v)))
	sub := (v >> (exp - b)) & ((1 << b) - 1)
	return int((int64(exp-b)+1)<<b) + int(sub)
}

// lowerBound returns the smallest value mapping to the bucket.
func (h *Histogram) lowerBound(bucket int) int64 {
	b := h.bits()
	if bucket < 1<<b {
		return int64(bucket)
	}
	exp := uint(bucket>>b) + b - 1
	sub := int64(bucket & ((1 << b) - 1))
	return (int64(1) << exp) + sub<<(exp-b)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
		h.min = math.MaxInt64
	}
	h.counts[h.bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Min returns the smallest recorded value (exact), or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the value at quantile q in [0,1] (e.g. 0.99), with
// the histogram's relative error. The returned value is the lower bound
// of the bucket containing the quantile, except the exact max for q
// values landing in the final bucket.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var seen int64
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= rank {
			if seen == h.n {
				return h.max
			}
			return h.lowerBound(k)
		}
	}
	return h.max
}

// P99 is shorthand for Quantile(0.99).
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
		h.min = math.MaxInt64
	}
	if h.bits() != other.bits() {
		panic("stats: merging histograms of different resolution")
	}
	for k, c := range other.counts {
		h.counts[k] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	if other.min < h.min {
		h.min = other.min
	}
}

// Summary bundles the metrics the paper reports per experiment point.
type Summary struct {
	Count int64
	Mean  float64
	P99   int64
	Max   int64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{Count: h.n, Mean: h.Mean(), P99: h.P99(), Max: h.max}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.0fns p99=%dns max=%dns", s.Count, s.Mean, s.P99, s.Max)
}

// OpenLoop generates the intended start times of an open-loop
// constant-rate workload: n requests at the given rate (requests per
// second), starting at start ns. Recording latency against these
// *intended* times — rather than actual send times — is the coordinated
// omission correction wrk2 applies: a stalled client must not hide
// server-induced queueing.
func OpenLoop(start int64, rate float64, n int) []int64 {
	if rate <= 0 || n <= 0 {
		return nil
	}
	interval := 1e9 / rate
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(float64(i)*interval)
	}
	return out
}
