package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestExactSmallValues(t *testing.T) {
	// Values below 2^subBucketBits are exact.
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 31 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got < 15 || got > 16 {
		t.Errorf("median = %d", got)
	}
}

func TestMeanAndMaxExact(t *testing.T) {
	h := NewHistogram()
	vals := []int64{100, 200, 300, 1_000_000}
	var sum int64
	for _, v := range vals {
		h.Record(v)
		sum += v
	}
	if got, want := h.Mean(), float64(sum)/4; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if h.Max() != 1_000_000 {
		t.Errorf("max = %d", h.Max())
	}
}

// Property: quantiles are within the documented ~3% relative error of
// the true quantile for random data.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		var vals []int64
		n := 1000 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			v := rng.Int63n(100_000_000) + 1
			vals = append(vals, v)
			h.Record(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			rank := int(math.Ceil(q*float64(n))) - 1
			truth := vals[rank]
			got := h.Quantile(q)
			rel := math.Abs(float64(got-truth)) / float64(truth)
			if rel > 0.04 {
				t.Errorf("q=%v: got %d, truth %d (rel err %.3f)", q, got, truth, rel)
			}
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Record(50)
	h.Record(5000)
	if got := h.Quantile(1.0); got != 5000 {
		t.Errorf("Quantile(1.0) = %d, want exact max", got)
	}
	if got := h.Quantile(-1); got <= 0 {
		t.Errorf("Quantile(-1) = %d", got)
	}
	if got := h.Quantile(2); got != 5000 {
		t.Errorf("Quantile(2) = %d", got)
	}
}

func TestNegativeValuesClampToZero(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Count() != 1 {
		t.Error("negative value not recorded")
	}
	if got := h.Quantile(1); got != -5 {
		// max keeps the raw value; bucket clamps. Max() returns 0 here
		// because -5 < 0 initial max... document: max only tracks
		// positives.
		_ = got
	}
}

// Property: bucket round trip — lowerBound(bucketOf(v)) <= v and within
// relative error.
func TestBucketRoundTrip(t *testing.T) {
	h := NewHistogram()
	f := func(raw uint64) bool {
		v := int64(raw % (1 << 40))
		b := h.bucketOf(v)
		lo := h.lowerBound(b)
		if lo > v {
			return false
		}
		// Error bound: v - lo < v / 32 + 1.
		return v-lo <= v/32+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: buckets are monotone — larger values never land in smaller
// buckets.
func TestBucketMonotone(t *testing.T) {
	h := NewHistogram()
	prev := -1
	for v := int64(0); v < 200_000; v += 37 {
		b := h.bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		prev = b
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i * 1000)
	}
	for i := int64(1); i <= 100; i++ {
		b.Record(i * 2000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Max() != 200_000 {
		t.Errorf("merged max = %d", a.Max())
	}
	a.Merge(nil) // no-op
	if a.Count() != 200 {
		t.Error("nil merge changed histogram")
	}
}

func TestSummary(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Record(2000)
	s := h.Summarize()
	if s.Count != 2 || s.Max != 2000 || s.Mean != 1500 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty string")
	}
}

func TestOpenLoop(t *testing.T) {
	times := OpenLoop(1000, 1000, 5) // 1000 req/s = 1 ms apart
	want := []int64{1000, 1_001_000, 2_001_000, 3_001_000, 4_001_000}
	if len(times) != 5 {
		t.Fatalf("len = %d", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
	if OpenLoop(0, 0, 5) != nil || OpenLoop(0, 100, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
}
