module tableau

go 1.22
