// Quickstart: plan a Tableau scheduling table for a small VM population
// and inspect the guarantees it encodes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
)

func main() {
	// A host with 2 guest cores and five VMs. Each VM declares the two
	// parameters Tableau needs (paper Sec. 5): a reserved CPU share U
	// and a maximum acceptable scheduling delay L. Here: two latency-
	// sensitive 25% VMs with a 20 ms bound, one 50% VM with a tight
	// 5 ms bound, and two best-effort 25% VMs that may also scavenge
	// idle time (uncapped).
	sys := core.NewSystem(2, planner.Options{}, dispatch.Options{})
	vms := []core.VMConfig{
		{Name: "web-a", Util: core.Util{Num: 1, Den: 4}, LatencyGoal: 20e6, Capped: true},
		{Name: "web-b", Util: core.Util{Num: 1, Den: 4}, LatencyGoal: 20e6, Capped: true},
		{Name: "kv-store", Util: core.Util{Num: 1, Den: 2}, LatencyGoal: 5e6, Capped: true},
		{Name: "batch-a", Util: core.Util{Num: 1, Den: 4}, LatencyGoal: 100e6},
		{Name: "batch-b", Util: core.Util{Num: 1, Den: 4}, LatencyGoal: 100e6},
	}
	for _, vm := range vms {
		if _, err := sys.AddVM(vm); err != nil {
			log.Fatal(err)
		}
	}

	// Planning maps each VM to a periodic task, partitions tasks onto
	// cores (falling back to C=D splitting and cluster scheduling if
	// needed), and simulates per-core EDF schedules into a table.
	tbl, res, err := sys.Plan()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planning stage: %s\n", res.Stage)
	fmt.Printf("table length:   %.3f ms (repeats cyclically)\n", float64(tbl.Len)/1e6)
	fmt.Printf("table size:     %d bytes\n\n", tbl.EncodedSize())

	fmt.Println("reservations per table cycle:")
	for id, vm := range vms {
		slots := tbl.VCPUSlots(id)
		var svc int64
		for _, s := range slots {
			svc += s.Len()
		}
		fmt.Printf("  %-9s %2d slots, %7.3f ms service, home core %d\n",
			vm.Name, len(slots), float64(svc)/1e6, tbl.VCPUs[id].HomeCore)
	}

	// The guarantees are not aspirations — they were verified against
	// the concrete table before Plan returned. Re-verify them here.
	if err := tbl.Check(res.Guarantees); err != nil {
		log.Fatalf("guarantee verification failed: %v", err)
	}
	fmt.Println("\nverified: every VM receives its full reservation in every period")
	fmt.Println("window, and no scheduling blackout exceeds its latency goal.")

	// The dispatcher does O(1) lookups against the table. Sample who
	// owns core 0 across one cycle.
	fmt.Println("\ncore 0 ownership across one cycle:")
	step := tbl.Len / 8
	for t := int64(0); t < tbl.Len; t += step {
		vcpu, reserved, until := tbl.Lookup(0, t)
		owner := "idle (second-level)"
		if reserved {
			owner = vms[vcpu].Name
		}
		fmt.Printf("  t=%8.3f ms: %-20s (until %.3f ms)\n", float64(t)/1e6, owner, float64(until)/1e6)
	}
}
