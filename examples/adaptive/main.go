// Adaptive: the reconfiguration loop the paper's related-work section
// anticipates on top of Tableau. A feedback controller watches each
// VM's consumption, grows reservations that run hot, shrinks idle ones,
// and pushes every new table through the dispatcher's lock-free switch
// — planning cost stays off the hot path no matter how often policy
// changes its mind.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"tableau/internal/adaptive"
	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

func main() {
	// Two cores, four VMs, everyone starting at an equal 25% share.
	sys := core.NewSystem(2, planner.Options{}, dispatch.Options{})
	names := []string{"web", "batch", "cron", "spare"}
	for _, n := range names {
		if _, err := sys.AddVM(core.VMConfig{
			Name:        n,
			Util:        core.Util{Num: 1, Den: 4},
			LatencyGoal: 20e6,
			Capped:      true,
		}); err != nil {
			log.Fatal(err)
		}
	}
	d, _, err := sys.BuildDispatcher()
	if err != nil {
		log.Fatal(err)
	}
	m := vmm.New(sim.New(3), 2, d, vmm.NoOverheads())

	// web: hungry — always has work. batch: moderate I/O loop.
	// cron: wakes for 2 ms of work every 100 ms. spare: asleep.
	m.AddVCPU("web", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.Compute(1_000_000)
	}), 256, true)
	m.AddVCPU("batch", workload.StressIO(400_000, 400_000, 40, 1), 256, true)
	m.AddVCPU("cron", workload.StressIO(2_000_000, 100_000_000, 0, 2), 256, true)
	m.AddVCPU("spare", vmm.ProgramFunc(func(mm *vmm.Machine, v *vmm.VCPU, now int64) vmm.Action {
		return vmm.BlockIndefinitely()
	}), 256, true)

	ctl := adaptive.New(sys, d, m, adaptive.Config{Interval: 500_000_000})
	m.Start()
	ctl.Start()

	fmt.Println("reservations over time (controller interval 500 ms):")
	fmt.Printf("  t=0.0s  %s\n", ctl.Describe())
	for s := 1; s <= 8; s++ {
		m.Run(int64(s) * 1_000_000_000)
		fmt.Printf("  t=%.1fs  %s\n", float64(s), ctl.Describe())
	}
	st := ctl.Stats()
	fmt.Printf("\ncontroller: %d ticks, %d grows, %d shrinks, %d replans (%d failed)\n",
		st.Ticks, st.Grows, st.Shrinks, st.Replans, st.PlanFails)
	for i, n := range names {
		fmt.Printf("  %-6s received %7.1f ms of CPU\n", n, float64(m.VCPUs[i].RunTime)/1e6)
	}
	fmt.Println("\nThe hungry web VM absorbed the reservations freed by idle VMs;")
	fmt.Println("each adjustment was a full plan-verify-switch cycle, with the")
	fmt.Println("running VMs' guarantees intact throughout.")
}
