// Density: the VM lifecycle story (paper Secs. 3 and 6). A high-density
// host runs under a live Tableau dispatcher while VMs are created, torn
// down, and reconfigured: each operation triggers the planner and a
// lock-free table switch at a safe cycle boundary, and the running VMs'
// guarantees hold throughout.
//
// Run with: go run ./examples/density
package main

import (
	"fmt"
	"log"

	"tableau/internal/core"
	"tableau/internal/dispatch"
	"tableau/internal/planner"
	"tableau/internal/sim"
	"tableau/internal/vmm"
	"tableau/internal/workload"
)

func main() {
	const cores = 4
	// Provision 4 VMs per core. Half start active; the rest are spare
	// slots we will "create" later.
	sys := core.NewSystem(cores, planner.Options{}, dispatch.Options{})
	total := cores * 4
	for i := 0; i < total; i++ {
		id, err := sys.AddVM(core.VMConfig{
			Name:        fmt.Sprintf("vm%02d", i),
			Util:        core.Util{Num: 1, Den: 4},
			LatencyGoal: 20e6,
			Capped:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i >= total/2 {
			sys.SetActive(id, false)
		}
	}

	d, res, err := sys.BuildDispatcher()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial plan: %d active VMs, stage=%s, table=%.1f ms\n",
		total/2, res.Stage, float64(res.Table.Len)/1e6)

	m := vmm.New(sim.New(9), cores, d, vmm.NoOverheads())
	var vcpus []*vmm.VCPU
	for i := 0; i < total; i++ {
		vcpus = append(vcpus, m.AddVCPU(fmt.Sprintf("vm%02d", i),
			workload.StressIO(300_000, 200_000, 50, int64(i)), 256, true))
	}
	m.Start()

	runFor := func(ms int64) { m.Run(m.Now() + ms*1_000_000) }
	report := func(phase string) {
		fmt.Printf("\n[%s] t=%.0f ms\n", phase, float64(m.Now())/1e6)
		var active, inactive int64
		for i, v := range vcpus {
			if i < total/2 {
				active += v.RunTime
			} else {
				inactive += v.RunTime
			}
		}
		fmt.Printf("  runtime: first half %.1f ms, second half %.1f ms\n",
			float64(active)/1e6, float64(inactive)/1e6)
		st := d.Stats()
		fmt.Printf("  dispatcher: %d table switches so far\n", st.TableSwitches)
	}

	runFor(300)
	report("half density")

	// "Create" the spare VMs: reactivate the slots and push a new table
	// into the live dispatcher. The switch happens at a cycle boundary;
	// no core ever sees a half-installed table.
	for i := total / 2; i < total; i++ {
		sys.SetActive(i, true)
	}
	if _, err := sys.Push(d); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncreated 8 more VMs; new table pushed (activates at a safe cycle boundary)")
	runFor(300)
	report("full density")

	// Reconfigure one VM to a larger share with a tighter latency goal —
	// the paper's price-tier upgrade. Tear down another to make room.
	sys.SetActive(1, false)
	if err := sys.Reconfigure(0, core.Util{Num: 1, Den: 2}, 5e6); err != nil {
		log.Fatal(err)
	}
	planRes, err := sys.Push(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupgraded vm00 to 50%% with a 5 ms latency bound (tore down vm01); stage=%s\n", planRes.Stage)
	before := vcpus[0].RunTime
	runFor(300)
	report("after upgrade")
	gained := vcpus[0].RunTime - before
	fmt.Printf("  vm00 received %.1f ms in the last 300 ms (%.0f%% of a core)\n",
		float64(gained)/1e6, float64(gained)/3e6)

	fmt.Println("\nEach reconfiguration regenerated the table on demand — the paper's")
	fmt.Println("planner/dispatcher split: planning cost lands on the (rare) VM")
	fmt.Println("lifecycle operations, never on the scheduler hot path.")
}
