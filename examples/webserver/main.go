// Webserver: the paper's headline experiment (Sec. 7.4) in miniature.
// A vantage VM serves 100 KiB responses under an open-loop constant-rate
// load while 47 I/O-intensive background VMs hammer the scheduler; the
// same scenario runs under Credit, RTDS, and Tableau, and the SLA-aware
// throughput comparison is printed.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"tableau/internal/experiments"
	"tableau/internal/workload"
)

func main() {
	const (
		fileSize = 100 * 1024    // 100 KiB responses
		duration = 2_000_000_000 // 2 simulated seconds per point
		slaP99   = 100_000_000   // SLA: p99 <= 100 ms
	)
	rates := []float64{200, 400, 500, 600, 700}

	fmt.Println("nginx-style server, capped VMs, I/O-intensive background")
	fmt.Println("(48 VMs on 12 cores; each VM reserved 25% of a core)")
	fmt.Println()
	fmt.Printf("%-9s %9s %10s %9s %9s\n", "scheduler", "offered", "achieved", "p99(ms)", "meets SLA")

	best := map[experiments.SchedulerKind]float64{}
	for _, kind := range experiments.CappedSchedulers {
		for _, rate := range rates {
			srv := experiments.NewWebServer()
			sc, err := experiments.Build(experiments.ScenarioConfig{
				Scheduler:  kind,
				Capped:     true,
				Background: experiments.BGIO,
				Seed:       7,
			}, srv.Program())
			if err != nil {
				log.Fatal(err)
			}
			srv.Bind(sc.Vantage)
			srv.CountUntil = duration
			sc.M.Start()
			workload.RunOpenLoop(sc.M, srv, 0, rate, duration, fileSize)
			sc.M.Run(duration + 200_000_000)

			achieved := float64(srv.CompletedInWindow()) / (float64(duration) / 1e9)
			p99 := srv.Latencies().P99()
			meets := p99 <= slaP99
			if meets && achieved > best[kind] {
				best[kind] = achieved
			}
			fmt.Printf("%-9s %9.0f %10.1f %9.2f %9v\n", kind, rate, achieved, float64(p99)/1e6, meets)
		}
		fmt.Println()
	}

	fmt.Println("SLA-aware peak throughput (highest rate with p99 <= 100 ms):")
	for _, kind := range experiments.CappedSchedulers {
		fmt.Printf("  %-9s %7.0f req/s\n", kind, best[kind])
	}
	fmt.Println()
	fmt.Println("The paper's Fig. 7(e): Tableau sustains ~600 req/s while Credit's")
	fmt.Println("tail latency collapses well before its raw peak — the cost of")
	fmt.Println("heuristic boosting when every VM performs I/O.")
}
