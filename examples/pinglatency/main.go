// Pinglatency: the paper's Fig. 6 in miniature. Randomly spaced pings
// are sent to a vantage VM packed among 47 background VMs; the average
// and maximum response latencies are compared across schedulers and
// background workloads. Tableau's maximum is bounded by the table
// structure no matter what the rest of the machine does.
//
// Run with: go run ./examples/pinglatency
package main

import (
	"fmt"
	"log"

	"tableau/internal/experiments"
	"tableau/internal/workload"
)

func main() {
	fmt.Println("ping latency, capped VMs, 4 VMs per core on 12 cores")
	fmt.Println()
	fmt.Printf("%-12s %-9s %10s %10s\n", "background", "scheduler", "avg (ms)", "max (ms)")
	for _, bg := range []experiments.BGKind{experiments.BGNone, experiments.BGIO, experiments.BGCPU} {
		for _, kind := range experiments.CappedSchedulers {
			sink := &workload.PingSink{}
			sc, err := experiments.Build(experiments.ScenarioConfig{
				Scheduler:  kind,
				Capped:     true,
				Background: bg,
				Seed:       42,
			}, sink.Program())
			if err != nil {
				log.Fatal(err)
			}
			sink.Bind(sc.Vantage)
			sc.M.Start()
			// 8 client threads, randomly spaced pings (paper: 0-200 ms
			// spacing; compressed here to keep the example fast).
			workload.SchedulePings(sc.M, sink, 8, 150, 20_000_000, 42)
			sc.M.Run(150*20_000_000 + 500_000_000)
			h := sink.Latencies()
			fmt.Printf("%-12s %-9s %10.3f %10.3f\n", bg, kind, h.Mean()/1e6, float64(h.Max())/1e6)
		}
		fmt.Println()
	}
	fmt.Println("What to look for (paper Sec. 7.3):")
	fmt.Println("  - Tableau's max never exceeds the ~10 ms implied by its table,")
	fmt.Println("    regardless of background workload.")
	fmt.Println("  - Credit's tail stretches to tens of ms under load: a capped,")
	fmt.Println("    mostly-idle VM loses its boost and waits out other VMs' bursts.")
	fmt.Println("  - Tableau's *average* is higher than the dynamic schedulers' —")
	fmt.Println("    the price of rigidity the paper discusses in Sec. 7.5.")
}
