# Developer entry points. `make ci` is the gate a change must pass.

GO ?= go

.PHONY: build vet staticcheck test race bench benchdiff fuzz verify-short mutation-smoke churn-short recover-short fleet-short failover-short tenancy-short ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when the host has it, stay
# green when it does not (CI images do not install it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The packages where concurrency now exists (the experiments worker
# pool, the shared planner cache, the dispatcher's lock-free switch
# board, the retrying planner client, the control plane's replan
# queue) or whose invariants those lean on.
race:
	$(GO) test -race ./internal/experiments ./internal/sim ./internal/planner \
		./internal/dispatch ./internal/faults ./internal/plannersvc ./internal/vmm \
		./internal/trace ./internal/core ./internal/journal ./internal/fleet

# Short fuzz smoke over the untrusted-input surfaces (the binary table
# and trace decoders) and the whole generate→run→oracle pipeline. The
# corpora are committed under each package's testdata/fuzz; long local
# runs raise -fuzztime.
fuzz:
	$(GO) test ./internal/table -run '^$$' -fuzz '^FuzzTableDecode$$' -fuzztime 10s
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzTraceDecode$$' -fuzztime 10s
	$(GO) test ./internal/verify -run '^$$' -fuzz '^FuzzScenario$$' -fuzztime 10s
	$(GO) test ./internal/journal -run '^$$' -fuzz '^FuzzJournalDecode$$' -fuzztime 10s

# Bounded property-based verification: generator determinism, the
# invariant oracles over generated scenarios (-short trims the seed
# counts), metamorphic planner properties, the cross-scheduler
# differential check, and a race pass over the soak fan-out.
verify-short:
	$(GO) test -short ./internal/verify
	$(GO) test -short -race ./internal/verify

# Mutation smoke: seeded scheduler/trace defects (starvation, delayed
# dispatch, phantom records, tampered dumps) must each be flagged by
# the oracle class that claims to catch them.
mutation-smoke:
	$(GO) test ./internal/verify -run 'TestMutationSmoke|TestShrinkFindsSmallerRepro' -v

# Churn determinism gate: the churnchaos CSV must be byte-identical
# across runs and -parallel settings, with zero per-transition
# blackout-bound violations, and the churn chapter of the verify
# harness (generator shape, continuity soak, transition wiring) must
# hold under -short.
churn-short:
	$(GO) test ./internal/experiments -run 'TestChurnChaosDeterminism' -v
	$(GO) test -short ./internal/verify -run 'TestChurn|TestGenerateChurnShape'

# Crash-recovery gate: the journal codec and crash injector test
# suites, the ~120-scenario quick crash matrix (seeded crash storms →
# recovery-equivalence + crash-seam oracles, zero violations), and the
# crashchaos CSV determinism check (byte-identical across runs and
# -parallel settings).
recover-short:
	$(GO) test ./internal/journal ./internal/faults
	$(GO) test -short ./internal/verify -run 'TestCrash|TestGenerateCrashScenario|TestRunCrash'
	$(GO) test ./internal/experiments -run 'TestCrashChaosDeterminism' -v
	$(GO) test ./internal/core -run 'TestJournal|TestRecover|TestClose|TestAttachJournal|TestEmergencyRollback'

# Fleet placement gate: the arbiter's unit + protocol tests, the
# fleet CSV determinism check (byte-identical across -parallel
# settings, zero oracle violations, nonzero conflict-retry counts),
# and the cross-host continuity oracle soak under -short.
fleet-short:
	$(GO) test ./internal/fleet
	$(GO) test -short ./internal/experiments -run 'TestFleetDeterminism' -v
	$(GO) test -short ./internal/verify -run 'TestCheckFleet'

# Fleet failure-domain gate: host crash/recover/evacuate unit tests,
# the failover CSV determinism check (byte-identical across -parallel
# settings, zero seam-oracle violations, both resolution paths taken),
# and the failure-seam oracle soak + BE-first mutation conviction
# under -short.
failover-short:
	$(GO) test ./internal/fleet -run 'TestHostCrash|TestFailStop|TestArbiterClose|TestArmCrashes'
	$(GO) test -short ./internal/experiments -run 'TestFailoverDeterminism' -v
	$(GO) test -short ./internal/verify -run 'TestFailoverSoak|TestMutationSmokeEvacuateBEFirst'

# Mixed-criticality tenancy gate: the tenancy CSV must be
# byte-identical across runs and -parallel settings (steady cell sheds
# nothing, surge cell sheds BE while LS keeps serving), and the
# class-aware chapters of the verify harness (tenancy continuity soak,
# shed-order mutation conviction) must hold under -short.
tenancy-short:
	$(GO) test ./internal/experiments -run 'TestTenancyDeterminism' -v
	$(GO) test -short ./internal/verify -run 'TestTenancyContinuity'
	$(GO) test ./internal/workload -run 'TestSLOServer|TestScheduleBursts'

# Full micro-benchmark pass over the hot-path packages.
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim ./internal/planner ./internal/table ./internal/dispatch \
		./internal/stats ./internal/netdev ./internal/periodic ./internal/trace \
		./internal/experiments ./internal/core ./internal/fleet

# Quick perf-regression check against the committed BENCH_*.json
# snapshot. Timings on shared/small machines are noisy, so the gate
# tolerance is generous; allocation metrics get only a small
# amortization slack, and a zero-alloc path gaining any alloc fails.
# Regenerate the committed snapshot with: go run ./cmd/benchdiff
# -count 3 keeps the best of three runs on both sides of the compare
# (the committed snapshot is generated the same way), so one slow
# scheduler tick on a tiny nanosecond-scale benchmark doesn't fail
# the gate.
benchdiff:
	$(GO) run ./cmd/benchdiff -count 3 -tolerance 40 -gate \
		-out /tmp/tableau-benchdiff -against $$(ls BENCH_*.json | tail -1)

ci: vet staticcheck build test race verify-short mutation-smoke churn-short recover-short fleet-short failover-short tenancy-short fuzz benchdiff
